package dataflow

import (
	"fmt"
	"sort"

	"cobra/internal/datapath"
	"cobra/internal/isa"
	"cobra/internal/model"
	"cobra/internal/rce"
	"cobra/internal/vet"
)

// maxSteps bounds the abstract walk (instruction fetches), matching the
// simulator's default cycle guard in spirit: a program that has not closed
// its abstract state cycle within this budget gets a walk-budget finding
// instead of a hang.
const maxSteps = 1 << 22

// A fact is one definition source a word can depend on. Facts are dense
// uint32 IDs: the two input facts are fixed, the rest are allocated on
// first use and described by the fact tables below.
type factID = uint32

const (
	factPlain factID = 0 // external input consumed without KEYREQ
	factKey   factID = 1 // key material: KEYREQ input, whitening keys, stores
	factFirst factID = 2 // first dynamically allocated fact
)

// factKind distinguishes the dynamically allocated fact classes.
type factKind uint8

const (
	factElem   factKind = iota // element instance (row, col, elem)
	factStore                  // OpERAMWrite instruction (iRAM address)
	factUninit                 // never-written eRAM cell read (cell index)
	factReg                    // power-up register contents (row, col)
	factFB                     // power-up feedback register (col)
)

// factInfo describes one allocated fact.
type factInfo struct {
	kind factKind
	a, b int // kind-dependent: (row*Cols+col, elem), (addr, 0), (cell, consumerAddr), ...
}

// engine is the abstract interpreter: a mirror of sim.Machine.Run over
// interned fact sets instead of 32-bit words.
type engine struct {
	prog []isa.Instr
	cfg  Config

	// arr is the configuration shadow: every configuration opcode is applied
	// to it, but it is never Ticked — the abstract tick below reads its
	// decoded state through the same accessors the simulator uses.
	arr *datapath.Array

	// Fact interning.
	facts     []factInfo // facts[id-factFirst]
	factIndex map[factInfo]factID
	single    map[factID]int // fact → set id of {fact}

	// Set interning: sets[id] is a sorted fact slice; setIndex maps its
	// rendered key; joinMemo caches pairwise joins.
	sets     [][]factID
	setIndex map[string]int
	joinMemo map[uint64]int

	// Abstract machine state.
	pc         int
	slot       int
	flags      uint16
	inputAvail bool        // an external block is available at every consume point
	eram       map[int]int // cell index → set id; absent = never written
	reg        [][datapath.Cols]int
	fb         [datapath.Cols]int

	// Where configuration came from: per (cell, elem) the iRAM address of
	// the most recent OpCfgElem, used to place findings.
	cfgAddr map[int]int // (row*Cols+col)*16+elem → addr
	// captAddr is the iRAM address of each column's most recent
	// OpCfgCapture (-1: never configured), for capture-lane tap events.
	captAddr [datapath.Cols]int

	// Side-channel export (see tap.go). ticks counts advancing datapath
	// cycles from power-up; curTick is the index of the cycle currently
	// evaluating (events inside one cycle share it).
	tap     *Tap
	ticks   int
	curTick int

	// Incremental fingerprint components (XOR-mixed hashes).
	cfgHash    uint64         // all element control words
	timingHash uint64         // control words excluding INSEL and ER
	cfgWords   map[int]uint64 // (cell*16+elem) → current data (for XOR-out)
	eramHash   uint64
	regHash    uint64
	holdHash   uint64
	shufHash   uint64
	lutHash    uint64
	whiteHash  uint64
	captHash   uint64

	// Liveness accumulation.
	live       map[factID]bool // facts reaching collected outputs
	outSeen    map[[2]int]bool // (col, set id) pairs already processed
	outputs    int
	dvalidAddr int // address of the FLAG instruction that set DVALID
	inmuxAddr  int // address of the most recent OpCfgInMux

	// Analyzer event records.
	uninitEvents map[int]int     // cell index → first consumer iRAM address
	storeAddrs   map[int]bool    // executed OpERAMWrite addresses
	taintCols    map[[2]int]bool // (col, missing-fact) reported

	// Inventory: element instances seen active at an advancing cycle, and
	// distinct timing configurations folded through the model.
	inventory   map[[3]int]bool // (row, col, elem)
	timingSeen  map[uint64]bool
	timingWorst model.Timing
	timingCount int

	// Termination.
	seen     map[string]bool
	steps    int
	complete bool
	budget   bool // walk-budget exhausted
	execErr  *vet.Finding
	findings []vet.Finding
}

// cellIndex flattens an eRAM reference.
func cellIndex(col, bank, addr int) int {
	return ((col&3)*datapath.ERAMBanks+(bank&3))*datapath.ERAMWords + (addr & 0xff)
}

func cellRef(idx int) datapath.ERAMRef {
	return datapath.ERAMRef{
		Col:  idx / (datapath.ERAMBanks * datapath.ERAMWords),
		Bank: idx / datapath.ERAMWords % datapath.ERAMBanks,
		Addr: idx % datapath.ERAMWords,
	}
}

func newEngine(prog []isa.Instr, cfg Config) (*engine, error) {
	arr, err := datapath.New(datapath.Geometry{Rows: cfg.Rows})
	if err != nil {
		return nil, err
	}
	e := &engine{
		prog:         prog,
		cfg:          cfg,
		arr:          arr,
		factIndex:    make(map[factInfo]factID),
		single:       make(map[factID]int),
		setIndex:     make(map[string]int),
		joinMemo:     make(map[uint64]int),
		eram:         make(map[int]int),
		reg:          make([][datapath.Cols]int, cfg.Rows),
		cfgAddr:      make(map[int]int),
		cfgWords:     make(map[int]uint64),
		live:         make(map[factID]bool),
		outSeen:      make(map[[2]int]bool),
		uninitEvents: make(map[int]int),
		storeAddrs:   make(map[int]bool),
		taintCols:    make(map[[2]int]bool),
		inventory:    make(map[[3]int]bool),
		timingSeen:   make(map[uint64]bool),
		seen:         make(map[string]bool),
		dvalidAddr:   -1,
	}
	for c := range e.captAddr {
		e.captAddr[c] = -1
	}
	e.sets = append(e.sets, nil) // set 0 = empty
	// Power-up register and feedback contents are distinct uninitialized
	// facts: reads of them are tracked through the chains like any other
	// definition, and pipeline-fill garbage is distinguishable from real
	// data.
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < datapath.Cols; c++ {
			e.reg[r][c] = e.singleton(e.fact(factInfo{kind: factReg, a: r, b: c}))
		}
	}
	for c := 0; c < datapath.Cols; c++ {
		e.fb[c] = e.singleton(e.fact(factInfo{kind: factFB, a: c}))
	}
	return e, nil
}

// --- fact/set interning ------------------------------------------------------

func (e *engine) fact(info factInfo) factID {
	if id, ok := e.factIndex[info]; ok {
		return id
	}
	id := factID(len(e.facts)) + factFirst
	e.facts = append(e.facts, info)
	e.factIndex[info] = id
	return id
}

func (e *engine) factDesc(id factID) factInfo {
	return e.facts[id-factFirst]
}

// singleton returns the set id of {f}.
func (e *engine) singleton(f factID) int {
	if id, ok := e.single[f]; ok {
		return id
	}
	id := e.intern([]factID{f})
	e.single[f] = id
	return id
}

// intern returns the id of a sorted, deduplicated fact slice.
func (e *engine) intern(fs []factID) int {
	if len(fs) == 0 {
		return 0
	}
	key := make([]byte, 0, len(fs)*4)
	for _, f := range fs {
		key = append(key, byte(f), byte(f>>8), byte(f>>16), byte(f>>24))
	}
	k := string(key)
	if id, ok := e.setIndex[k]; ok {
		return id
	}
	id := len(e.sets)
	e.sets = append(e.sets, append([]factID(nil), fs...))
	e.setIndex[k] = id
	return id
}

// join returns the id of the union of two interned sets.
func (e *engine) join(a, b int) int {
	if a == b || b == 0 {
		return a
	}
	if a == 0 {
		return b
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	memoKey := uint64(lo)<<32 | uint64(hi)
	if id, ok := e.joinMemo[memoKey]; ok {
		return id
	}
	x, y := e.sets[lo], e.sets[hi]
	merged := make([]factID, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			merged = append(merged, x[i])
			i++
		case x[i] > y[j]:
			merged = append(merged, y[j])
			j++
		default:
			merged = append(merged, x[i])
			i++
			j++
		}
	}
	merged = append(merged, x[i:]...)
	merged = append(merged, y[j:]...)
	id := e.intern(merged)
	e.joinMemo[memoKey] = id
	return id
}

// taintOf projects an interned set onto the key/plaintext lattice.
func (e *engine) taintOf(set int) Taint {
	return Taint{Key: e.has(set, factKey), Plain: e.has(set, factPlain)}
}

// laneTaint resolves the taint feeding a non-data lane: empty for the base
// ISA (immediates and counters), or the named register's current taint
// when the tap's Source override rewires the lane (the seeded-defect
// model).
func (e *engine) laneTaint(site LaneSite) Taint {
	if e.tap == nil || e.tap.Source == nil {
		return Taint{}
	}
	src, ok := e.tap.Source(site)
	if !ok || src.Row < 0 || src.Row >= e.cfg.Rows || src.Col < 0 || src.Col >= datapath.Cols {
		return Taint{}
	}
	return e.taintOf(e.reg[src.Row][src.Col])
}

// has reports whether interned set s contains fact f.
func (e *engine) has(s int, f factID) bool {
	for _, g := range e.sets[s] {
		if g == f {
			return true
		}
		if g > f {
			return false
		}
	}
	return false
}

// --- hashing helpers ---------------------------------------------------------

// mix is a 64-bit finalizer (splitmix64-style) used for the incremental
// XOR-accumulated fingerprint components.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func mix2(a, b uint64) uint64 { return mix(a*0x9e3779b97f4a7c15 + b + 1) }

// --- configuration mirror ----------------------------------------------------

// timingRelevant reports whether an element's control word affects static
// timing (everything except INSEL routing and the ER read-port address;
// model.Analyze ignores both).
func timingRelevant(el isa.Elem) bool {
	return el != isa.ElemInsel && el != isa.ElemER && el != isa.ElemOut
}

// applyElem mirrors OpCfgElem: install on the shadow array and maintain the
// incremental configuration hashes and provenance map.
func (e *engine) applyElem(addr int, s isa.Slice, el isa.Elem, data uint64) error {
	if err := e.arr.ApplyElem(s, el, data); err != nil {
		return err
	}
	// Record provenance and hash deltas for exactly the cells the datapath
	// touched (its forEach semantics, including the broadcast-D skip).
	e.forEach(s, func(r, c int) {
		if el == isa.ElemD && !datapath.MulColumn(c) && s.Scope != isa.ScopeOne {
			return
		}
		key := (r*datapath.Cols+c)*16 + int(el)
		old := e.cfgWords[key]
		if old == data {
			e.cfgAddr[key] = addr
			return
		}
		h0 := mix2(uint64(key), old)
		h1 := mix2(uint64(key), data)
		e.cfgHash ^= h0 ^ h1
		if timingRelevant(el) {
			e.timingHash ^= h0 ^ h1
		}
		e.cfgWords[key] = data
		e.cfgAddr[key] = addr
	})
	return nil
}

// forEach enumerates the cells a slice addresses (the datapath's own scope
// semantics). Out-of-range rows are skipped: the shadow array's own Apply
// call reports the fault and the walk stops, so the hash deltas for a
// faulting instruction never matter.
func (e *engine) forEach(s isa.Slice, f func(r, c int)) {
	rows := e.cfg.Rows
	switch s.Scope {
	case isa.ScopeOne:
		if int(s.Row) < rows {
			f(int(s.Row), int(s.Col))
		}
	case isa.ScopeCol:
		for r := 0; r < rows; r++ {
			f(r, int(s.Col))
		}
	case isa.ScopeRow:
		if int(s.Row) >= rows {
			return
		}
		for c := 0; c < datapath.Cols; c++ {
			f(int(s.Row), c)
		}
	default:
		for r := 0; r < rows; r++ {
			for c := 0; c < datapath.Cols; c++ {
				f(r, c)
			}
		}
	}
}

// --- the walk ----------------------------------------------------------------

func (e *engine) fail(addr int, msg string) {
	f := vet.Finding{Addr: addr, Sev: vet.Error, Code: "exec-fault", Msg: msg}
	e.execErr = &f
}

// run walks the instruction trace until the abstract state repeats, the
// program halts, an execution fault occurs, or the budget runs out.
func (e *engine) run() {
	for {
		if e.steps >= maxSteps {
			e.budget = true
			return
		}
		e.steps++
		if e.pc < 0 || e.pc >= len(e.prog) {
			e.fail(e.pc, fmt.Sprintf("control falls off the program (pc=%#x)", e.pc))
			return
		}
		addr := e.pc
		in := e.prog[addr]
		e.pc++
		halt, ready := e.execute(addr, in)
		if e.execErr != nil {
			return
		}
		if halt {
			e.complete = true
			return
		}
		if ready {
			// Idle point: the window resynchronizes and (first time) external
			// input becomes available. Fingerprint here too — steady-state
			// loops in feedback programs close their cycle at idle points.
			e.slot = 0
			e.inputAvail = true
			if e.checkpoint(1) {
				e.complete = true
				return
			}
			continue
		}
		e.slot++
		if e.slot < e.cfg.Window {
			continue
		}
		e.slot = 0
		e.tick()
		if e.checkpoint(0) {
			e.complete = true
			return
		}
	}
}

// execute mirrors sim.Machine.execute over the abstract state. ready
// reports a ready-flag raise (idle point).
func (e *engine) execute(addr int, in isa.Instr) (halt, ready bool) {
	switch in.Op {
	case isa.OpNop:
	case isa.OpCfgElem:
		if err := e.applyElem(addr, in.Slice, in.Elem, in.Data); err != nil {
			e.fail(addr, err.Error())
		}
	case isa.OpEnOut, isa.OpDisOut:
		enable := in.Op == isa.OpEnOut
		if in.Slice.Scope != isa.ScopeAll {
			// Hash the hold-state delta before the array mutates it.
			e.forEach(in.Slice, func(r, c int) {
				if e.arr.Held(r, c) == !enable {
					return
				}
				e.holdHash ^= mix2(uint64(r*datapath.Cols+c), 0x48)
			})
		}
		if err := e.arr.SetOutEnable(in.Slice, enable); err != nil {
			e.fail(addr, err.Error())
		}
	case isa.OpLoadLUT:
		e.forEach(in.Slice, func(r, c int) {
			cell := r*datapath.Cols + c
			e.lutHash ^= e.lutGroupHash(cell, r, c, in.LUT)
		})
		if err := e.arr.LoadLUT(in.Slice, in.LUT, in.Data); err != nil {
			e.fail(addr, err.Error())
			return
		}
		e.forEach(in.Slice, func(r, c int) {
			cell := r*datapath.Cols + c
			e.lutHash ^= e.lutGroupHash(cell, r, c, in.LUT)
		})
	case isa.OpCfgShuf:
		idx := int(in.Slice.Row)
		if idx < 0 || idx >= e.cfg.Rows/2 {
			e.fail(addr, fmt.Sprintf("shuffler %d out of range", idx))
			return
		}
		e.shufHash ^= e.shufHashOf(idx)
		if err := e.arr.SetShuffler(idx, isa.DecodeShuf(in.Data)); err != nil {
			e.fail(addr, err.Error())
			return
		}
		e.shufHash ^= e.shufHashOf(idx)
	case isa.OpCfgInMux:
		e.arr.SetInMux(isa.DecodeInMux(in.Data))
		e.inmuxAddr = addr
	case isa.OpCfgWhite:
		cfg := isa.DecodeWhite(in.Data)
		e.whiteHash ^= e.whiteHashOf(int(cfg.Col & 3))
		e.arr.SetWhitening(cfg)
		e.whiteHash ^= e.whiteHashOf(int(cfg.Col & 3))
	case isa.OpERAMWrite:
		cfg := isa.DecodeERAMWrite(in.Data)
		cell := cellIndex(int(in.Slice.Col), int(cfg.Bank), int(cfg.Addr))
		e.storeAddrs[addr] = true
		set := e.join(e.singleton(factKey),
			e.singleton(e.fact(factInfo{kind: factStore, a: addr})))
		e.setERAM(cell, set)
	case isa.OpCfgCapture:
		col := int(in.Slice.Col & 3)
		e.captHash ^= e.captHashOf(col)
		e.arr.SetCapture(col, isa.DecodeCapture(in.Data))
		e.captHash ^= e.captHashOf(col)
		e.captAddr[col] = addr
	case isa.OpCtlFlag:
		if e.tap != nil && e.tap.Control != nil {
			site := LaneSite{Kind: LaneFlag, Addr: addr}
			e.tap.Control(e.ticks, site, in.Op, e.laneTaint(site))
		}
		cfg := isa.DecodeFlag(in.Data)
		e.flags = (e.flags &^ cfg.Clear) | cfg.Set
		if cfg.Set&isa.FlagDValid != 0 {
			e.dvalidAddr = addr
		}
		if cfg.Set&isa.FlagReady != 0 {
			return false, true
		}
	case isa.OpJmp:
		if e.tap != nil && e.tap.Control != nil {
			site := LaneSite{Kind: LaneJmp, Addr: addr}
			e.tap.Control(e.ticks, site, in.Op, e.laneTaint(site))
		}
		target := int(in.Data & 0xfff)
		if target >= len(e.prog) {
			e.fail(addr, fmt.Sprintf("jump target %#x outside the program", target))
			return
		}
		e.pc = target
	case isa.OpHalt:
		return true, false
	default:
		e.fail(addr, fmt.Sprintf("unimplemented opcode %v", in.Op))
	}
	return false, false
}

// setERAM updates one abstract eRAM cell and its hash.
func (e *engine) setERAM(cell, set int) {
	if old, ok := e.eram[cell]; ok {
		if old == set {
			return
		}
		e.eramHash ^= mix2(uint64(cell), uint64(old)+1)
	}
	e.eram[cell] = set
	e.eramHash ^= mix2(uint64(cell), uint64(set)+1)
}

// eramRead returns the abstract value of one eRAM cell; an unwritten cell
// allocates an uninit fact and records its first consumer.
func (e *engine) eramRead(cell, consumerAddr int) int {
	if set, ok := e.eram[cell]; ok {
		return set
	}
	f := e.fact(factInfo{kind: factUninit, a: cell})
	if _, ok := e.uninitEvents[cell]; !ok {
		e.uninitEvents[cell] = consumerAddr
	}
	set := e.singleton(f)
	// Cache the sentinel value so repeated reads converge instead of
	// re-deriving (keeps the state finite).
	e.eram[cell] = set
	// An uninit cell is still "unwritten" for hashing purposes only once:
	// the cached sentinel entered the map through the normal path.
	e.eramHash ^= mix2(uint64(cell), uint64(set)+1)
	return set
}

// --- per-structure hash snapshots (for incremental XOR in/out) ---------------

func (e *engine) shufHashOf(idx int) uint64 {
	p := e.arr.Shuffler(idx)
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(p[i]) << (8 * i)
	}
	var w uint64
	for i := 0; i < 8; i++ {
		w |= uint64(p[8+i]) << (8 * i)
	}
	return mix2(uint64(idx)*2+100, v) ^ mix2(uint64(idx)*2+101, w)
}

func (e *engine) whiteHashOf(col int) uint64 {
	w := e.arr.Whitening(col)
	return mix2(uint64(col)+200, w.Encode())
}

func (e *engine) captHashOf(col int) uint64 {
	c := e.arr.Capture(col)
	return mix2(uint64(col)+300, c.Encode())
}

// lutGroupHash hashes the bytes/nibbles one OpLoadLUT group currently holds
// in cell (r, c)'s LUT store.
func (e *engine) lutGroupHash(cell, r, c int, lutAddr uint16) uint64 {
	space4, bank, group := isa.SplitLUTAddr(lutAddr)
	lut := &e.arr.RCE(r, c).LUT
	var v uint64
	if space4 {
		if group > 15 {
			return 0
		}
		for i := 0; i < 8; i++ {
			v |= uint64(lut.S4[bank][group*8+i]&0xf) << (4 * i)
		}
	} else {
		if group > 63 {
			return 0
		}
		for i := 0; i < 4; i++ {
			v |= uint64(lut.S8[bank][group*4+i]) << (8 * i)
		}
	}
	return mix2(uint64(cell)<<16|uint64(lutAddr), v+1)
}

// --- checkpoint (termination detection) --------------------------------------

// checkpoint fingerprints the complete abstract state; tag distinguishes
// cycle boundaries from idle points. Returns true when the state repeats.
func (e *engine) checkpoint(tag int) bool {
	im := e.arr.InMux()
	var key [16]uint64
	key[0] = uint64(e.pc)<<32 | uint64(tag)<<16 | uint64(e.flags)
	b := uint64(0)
	if e.arr.Enabled() {
		b |= 1
	}
	if e.inputAvail {
		b |= 2
	}
	key[1] = b<<32 | uint64(im.Mode)<<16 | uint64(im.Bank)<<8 | uint64(im.Addr)
	key[2] = uint64(e.arr.PlaybackAddr())
	key[3] = e.cfgHash
	key[4] = e.eramHash
	key[5] = e.regHash
	key[6] = e.holdHash
	key[7] = e.shufHash
	key[8] = e.lutHash
	key[9] = e.whiteHash
	key[10] = e.captHash
	for c := 0; c < datapath.Cols; c++ {
		key[11+c] = uint64(e.fb[c])
	}
	// dvalidAddr participates so output attribution stays stable; slot is
	// always 0 at checkpoints.
	key[15] = uint64(uint32(e.dvalidAddr))<<32 | uint64(uint32(e.inmuxAddr))
	k := string(fmt.Appendf(nil, "%x", key[:16]))
	if e.seen[k] {
		return true
	}
	e.seen[k] = true
	return false
}

// --- the abstract datapath cycle ---------------------------------------------

// tick mirrors datapath.Array.Tick over abstract values: the same phase
// order, shuffler and bypass-bus semantics, register present/latch split
// and commit actions, with every 32-bit word replaced by an interned fact
// set and every active element folding its own fact into the chain.
func (e *engine) tick() {
	if !e.arr.Enabled() {
		return // stall: no state moves
	}
	im := e.arr.InMux()
	if im.Mode == isa.InExternal && !e.inputAvail {
		return // stall: input starvation
	}
	// The cycle definitely advances: stamp its index for tap events.
	e.curTick = e.ticks
	e.ticks++
	var vec [datapath.Cols]int
	switch im.Mode {
	case isa.InExternal:
		in := e.singleton(factPlain)
		if e.flags&isa.FlagKeyReq != 0 {
			in = e.singleton(factKey)
		}
		for c := range vec {
			vec[c] = in
		}
	case isa.InFeedback:
		vec = e.fb
	case isa.InERAM:
		for c := 0; c < datapath.Cols; c++ {
			cell := cellIndex(c, int(im.Bank), int(e.arr.PlaybackAddr()))
			if e.tap != nil && e.tap.Addr != nil {
				site := LaneSite{Kind: LanePlayback, Col: c}
				e.tap.Addr(e.curTick, site, isa.ElemInsel, e.inmuxAddr, e.laneTaint(site))
			}
			vec[c] = e.eramRead(cell, e.inmuxAddr)
		}
	}
	// Input whitening: an active whitening register folds key material in.
	for c := 0; c < datapath.Cols; c++ {
		w := e.arr.Whitening(c)
		if w.Mode != isa.WhiteOff && w.In {
			vec[c] = e.join(vec[c], e.singleton(factKey))
		}
	}

	rows := e.cfg.Rows
	type pend struct {
		r, c int
		set  int
	}
	var latches []pend
	prev := vec
	newTiming := !e.timingSeen[e.timingHash]
	for r := 0; r < rows; r++ {
		if r%2 == 1 {
			vec = e.shuffle(r/2, vec)
		}
		rowIn := vec
		var out [datapath.Cols]int
		for c := 0; c < datapath.Cols; c++ {
			el := e.arr.RCE(r, c)
			held := el.Cfg.Reg.Enabled && e.arr.Held(r, c)
			var v int
			if held {
				// Frozen register: present stored value; the chain does not
				// evaluate into architectural state this cycle.
				v = e.reg[r][c]
				out[c] = v
				continue
			}
			v = e.evalCell(r, c, el, vec, prev, newTiming)
			if el.Cfg.Reg.Enabled {
				out[c] = e.reg[r][c]
				latches = append(latches, pend{r, c, e.withElemFact(v, r, c, isa.ElemReg, newTiming)})
			} else {
				out[c] = v
			}
		}
		vec = out
		prev = rowIn
	}

	// Output whitening.
	for c := 0; c < datapath.Cols; c++ {
		w := e.arr.Whitening(c)
		if w.Mode != isa.WhiteOff && !w.In {
			vec[c] = e.join(vec[c], e.singleton(factKey))
		}
	}

	// Commit: register latches, capture stores, playback increment.
	for _, p := range latches {
		if old := e.reg[p.r][p.c]; old != p.set {
			e.regHash ^= mix2(uint64(p.r*datapath.Cols+p.c)+400, uint64(old)+1)
			e.regHash ^= mix2(uint64(p.r*datapath.Cols+p.c)+400, uint64(p.set)+1)
			e.reg[p.r][p.c] = p.set
		}
	}
	for c := 0; c < datapath.Cols; c++ {
		cap := e.arr.Capture(c)
		if cap.Enabled {
			if e.tap != nil && e.tap.Addr != nil {
				site := LaneSite{Kind: LaneCapture, Col: c}
				e.tap.Addr(e.curTick, site, isa.ElemOut, e.captAddr[c], e.laneTaint(site))
			}
			cell := cellIndex(c, int(cap.Bank), int(cap.Addr))
			e.setERAM(cell, vec[c])
			e.captHash ^= e.captHashOf(c)
			e.arr.SetCapture(c, isa.CaptureCfg{Enabled: true, Bank: cap.Bank, Addr: cap.Addr + 1})
			e.captHash ^= e.captHashOf(c)
		}
	}
	if im.Mode == isa.InERAM {
		// Advance the playback counter without disturbing the configuration:
		// re-selecting eRAM mode resets the counter, so poke the array the
		// same way its own commit does — via SetInMux with the next address.
		e.arr.SetInMux(isa.InMuxCfg{Mode: isa.InERAM, Bank: im.Bank, Addr: e.arr.PlaybackAddr() + 1})
	}
	e.fb = vec

	// Static timing: fold each new distinct configuration through the model.
	if newTiming {
		e.timingSeen[e.timingHash] = true
		t := model.Analyze(e.arr, model.DefaultDelays())
		e.timingCount++
		if e.timingCount == 1 || t.DatapathMHz < e.timingWorst.DatapathMHz {
			e.timingWorst = t
		}
	}

	// Output collection.
	if e.flags&isa.FlagDValid != 0 {
		e.outputs++
		for c := 0; c < datapath.Cols; c++ {
			if e.tap != nil && e.tap.Output != nil {
				e.tap.Output(e.curTick, c, e.taintOf(vec[c]))
			}
			key := [2]int{c, vec[c]}
			if e.outSeen[key] {
				continue
			}
			e.outSeen[key] = true
			for _, f := range e.sets[vec[c]] {
				e.live[f] = true
			}
			e.checkTaint(c, vec[c])
		}
	}
}

// shuffle permutes abstract column values through shuffler idx: destination
// word c depends on the words holding its four source bytes.
func (e *engine) shuffle(idx int, v [datapath.Cols]int) [datapath.Cols]int {
	perm := e.arr.Shuffler(idx)
	var out [datapath.Cols]int
	for c := 0; c < datapath.Cols; c++ {
		s := 0
		for i := 0; i < 4; i++ {
			src := int(perm[c*4+i]) / 4
			s = e.join(s, v[src])
		}
		out[c] = s
	}
	return out
}

// operandSet resolves an element operand source to its abstract value.
func (e *engine) operandSet(src isa.Src, c int, vec [datapath.Cols]int,
	el *rce.RCE, r int, consumerElem isa.Elem, newTiming bool) int {
	switch src {
	case isa.SrcINA:
		return vec[c]
	case isa.SrcINB:
		return vec[secondaryBlock(c, 0)]
	case isa.SrcINC:
		return vec[secondaryBlock(c, 1)]
	case isa.SrcIND:
		return vec[secondaryBlock(c, 2)]
	case isa.SrcINER:
		cell := cellIndex(c, int(el.Cfg.ER.Bank), int(el.Cfg.ER.Addr))
		consumer := e.cfgAddr[(r*datapath.Cols+c)*16+int(consumerElem)]
		if e.tap != nil && e.tap.Addr != nil {
			site := LaneSite{Kind: LaneERAddr, Row: r, Col: c}
			e.tap.Addr(e.curTick, site, consumerElem, consumer, e.laneTaint(site))
		}
		return e.eramRead(cell, consumer)
	}
	return 0 // immediate or undefined source: no dependency
}

// secondaryBlock mirrors datapath.secondary: column c's k-th secondary
// input block (k=0 → INB, 1 → INC, 2 → IND).
func secondaryBlock(c, k int) int {
	b := k
	if b >= c {
		b++
	}
	return b
}

// withElemFact tags a chain value with the element instance's own fact and
// (on new timing configurations) records the instance in the inventory.
func (e *engine) withElemFact(x, r, c int, el isa.Elem, record bool) int {
	if record {
		e.inventory[[3]int{r, c, int(el)}] = true
	}
	return e.join(x, e.singleton(e.fact(factInfo{kind: factElem, a: r*datapath.Cols + c, b: int(el)})))
}

// evalCell mirrors rce.Eval over abstract values: INSEL selection, then
// every enabled element in the fixed chain order, each folding its own fact
// and its operand's fact set into the running value.
func (e *engine) evalCell(r, c int, el *rce.RCE, vec, prev [datapath.Cols]int, newTiming bool) int {
	var x int
	switch src := el.Cfg.Insel.Source & 7; src {
	case 1:
		x = vec[secondaryBlock(c, 0)]
	case 2:
		x = vec[secondaryBlock(c, 1)]
	case 3:
		x = vec[secondaryBlock(c, 2)]
	case 4, 5, 6, 7:
		x = prev[src-4]
	default:
		x = vec[c]
	}
	step := func(elem isa.Elem, active bool, data uint64) {
		if !active {
			return
		}
		// Table-read index taint: the chain value entering a C element is
		// the LUT-bank read address; the value entering an F element indexes
		// the folded GF contribution tables in a compiled fastpath (and the
		// LUT-realized GF logic in hardware). Observed before the element's
		// own fact joins — the index is what the element consumes.
		if e.tap != nil && e.tap.Table != nil && (elem == isa.ElemC || elem == isa.ElemF) {
			e.tap.Table(e.curTick, r, c, elem,
				e.cfgAddr[(r*datapath.Cols+c)*16+int(elem)], e.taintOf(x))
		}
		x = e.withElemFact(x, r, c, elem, newTiming)
		if src, hasOp := isa.ElemOperand(elem, data); hasOp && src != isa.SrcImm {
			x = e.join(x, e.operandSet(src, c, vec, el, r, elem, newTiming))
		}
	}
	cfg := &el.Cfg
	step(isa.ElemE1, cfg.E1.Mode != isa.EBypass, cfg.E1.Encode())
	step(isa.ElemA1, cfg.A1.Op != isa.ABypass, cfg.A1.Encode())
	step(isa.ElemC, cfg.C.Mode != isa.CBypass, cfg.C.Encode())
	step(isa.ElemE2, cfg.E2.Mode != isa.EBypass, cfg.E2.Encode())
	if el.HasMul {
		step(isa.ElemD, cfg.D.Mode != isa.DBypass, cfg.D.Encode())
	}
	step(isa.ElemB, cfg.B.Mode != isa.BBypass, cfg.B.Encode())
	step(isa.ElemF, cfg.F.Mode != isa.FBypass, cfg.F.Encode())
	step(isa.ElemA2, cfg.A2.Op != isa.ABypass, cfg.A2.Encode())
	step(isa.ElemE3, cfg.E3.Mode != isa.EBypass, cfg.E3.Encode())
	return x
}

// checkTaint verifies one collected output word reaches both key material
// and plaintext, reporting at the data-valid raise.
func (e *engine) checkTaint(col, set int) {
	hasKey := e.has(set, factKey)
	hasPlain := e.has(set, factPlain)
	if !hasKey && !e.taintCols[[2]int{col, 0}] {
		e.taintCols[[2]int{col, 0}] = true
		e.findings = appendFinding(e.findings, e.prog, e.dvalidAddr, vet.Error, "taint-no-key",
			fmt.Sprintf("output word of column %d carries no key material", col))
	}
	if !hasPlain && !e.taintCols[[2]int{col, 1}] {
		e.taintCols[[2]int{col, 1}] = true
		e.findings = appendFinding(e.findings, e.prog, e.dvalidAddr, vet.Error, "taint-no-plain",
			fmt.Sprintf("output word of column %d does not depend on the plaintext", col))
	}
}

// --- report ------------------------------------------------------------------

// report assembles the Result from the walked state.
func (e *engine) report(res *Result) {
	res.Complete = e.complete
	res.Outputs = e.outputs
	res.Findings = append(res.Findings, e.findings...)
	if e.execErr != nil {
		addFinding(res, e.prog, e.execErr.Addr, e.execErr.Sev, e.execErr.Code, e.execErr.Msg)
	}
	if e.budget {
		addFinding(res, e.prog, 0, vet.Warn, "walk-budget",
			fmt.Sprintf("abstract state did not close within %d steps; liveness results suppressed", maxSteps))
	}

	// Uninitialized reads: definite on any walk — the consuming cycle was
	// observed. Report the ones whose values reach an output as errors; all
	// consumed cells are exported for the dynamic cross-check.
	for cell, addr := range e.uninitEvents {
		ref := cellRef(cell)
		res.UninitReads = append(res.UninitReads, ref)
		f := e.fact(factInfo{kind: factUninit, a: cell})
		sev := vet.Warn
		note := "; the value does not reach an output"
		if e.live[f] {
			sev = vet.Error
			note = " and the value reaches the ciphertext"
		}
		addFinding(res, e.prog, addr, sev, "uninit-read",
			fmt.Sprintf("eRAM c%d.b%d[%d] is read before any write%s", ref.Col, ref.Bank, ref.Addr, note))
	}
	sortRefs(res.UninitReads)

	// Power-up register and feedback contents reaching the ciphertext: the
	// program collected output before the pipeline (or feedback loop) was
	// filled with real data.
	for f := factFirst; f < factID(len(e.facts))+factFirst; f++ {
		if !e.live[f] {
			continue
		}
		switch info := e.factDesc(f); info.kind {
		case factReg:
			addr := e.cfgAddr[(info.a*datapath.Cols+info.b)*16+int(isa.ElemReg)]
			addFinding(res, e.prog, addr, vet.Error, "uninit-read",
				fmt.Sprintf("power-up register contents of r%d.c%d reach the ciphertext", info.a, info.b))
		case factFB:
			addFinding(res, e.prog, e.inmuxAddr, vet.Error, "uninit-read",
				fmt.Sprintf("power-up feedback register of column %d reaches the ciphertext", info.a))
		}
	}

	// Timing.
	if e.timingCount > 0 {
		res.Timing = TimingReport{
			Configs:        e.timingCount,
			CriticalPathNs: e.timingWorst.CriticalPathNs,
			DatapathMHz:    e.timingWorst.DatapathMHz,
			IRAMMHz:        e.timingWorst.IRAMMHz,
		}
	}

	// Liveness claims require a complete walk with observed outputs:
	// otherwise unobserved future cycles could still consume any value.
	if !e.complete || e.outputs == 0 {
		return
	}
	gates := model.Table4()
	for inst := range e.inventory {
		r, c, el := inst[0], inst[1], isa.Elem(inst[2])
		g := elemGates(gates, el)
		res.Gates.ConfiguredElems++
		res.Gates.ConfiguredGates += g
		f := e.fact(factInfo{kind: factElem, a: r*datapath.Cols + c, b: int(el)})
		if e.live[f] {
			res.Gates.LiveElems++
			res.Gates.LiveGates += g
			continue
		}
		res.Dead = append(res.Dead, DeadElem{Row: r, Col: c, Elem: el})
		addr := e.cfgAddr[(r*datapath.Cols+c)*16+int(el)]
		addFinding(res, e.prog, addr, vet.Warn, "dead-element",
			fmt.Sprintf("%s is active but its value never reaches an output word (%d gates)",
				describeCell(r, c, el), g))
	}
	sortDead(res.Dead)
	for addr := range e.storeAddrs {
		f := e.fact(factInfo{kind: factStore, a: addr})
		if e.live[f] {
			continue
		}
		res.DeadStores = append(res.DeadStores, addr)
		addFinding(res, e.prog, addr, vet.Warn, "dead-store",
			"stored eRAM word never reaches an output word")
	}
	sortInts(res.DeadStores)
}

func sortRefs(refs []datapath.ERAMRef) {
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Bank != b.Bank {
			return a.Bank < b.Bank
		}
		return a.Addr < b.Addr
	})
}

func sortDead(d []DeadElem) {
	sort.Slice(d, func(i, j int) bool {
		a, b := d[i], d[j]
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Elem < b.Elem
	})
}

func sortInts(xs []int) { sort.Ints(xs) }
