package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.go")
	if err := os.WriteFile(clean, []byte("package x\n\nfunc F() int { return 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dirty := filepath.Join(dir, "dirty.go")
	dirtySrc := `package x

import "cobra/internal/program"

func f() { program.Encrypt(nil, nil, nil) }
`
	if err := os.WriteFile(dirty, []byte(dirtySrc), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"clean file", []string{clean}, 0},
		{"dirty file", []string{dirty}, 1},
		{"dir walk", []string{dir}, 1},
		{"recursive pattern", []string{dir + "/..."}, 1},
		{"missing file", []string{filepath.Join(dir, "absent.go")}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(tc.args, &out, &errb); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, out.String(), errb.String())
			}
		})
	}
}

// TestFullReport pins that a dirty file does not stop later arguments from
// being checked.
func TestFullReport(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.go")
	b := filepath.Join(dir, "b.go")
	os.WriteFile(a, []byte("package x\n\nimport \"cobra/internal/program\"\n\nfunc f() { program.Encrypt(nil, nil, nil) }\n"), 0o644)
	os.WriteFile(b, []byte("package x\n\n//cobra:hotpath\nfunc g() { _ = make([]int, 1) }\n"), 0o644)
	var out, errb bytes.Buffer
	if got := run([]string{a, b}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1", got)
	}
	s := out.String()
	if !strings.Contains(s, "deprecated") || !strings.Contains(s, "hotpath") {
		t.Errorf("expected findings from both files:\n%s", s)
	}
}
