package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cobra/internal/vet"
)

const (
	cleanFile   = "testdata/rc6_1_clean.casm"
	dirtyFile   = "testdata/falloff_dirty.casm"
	ttableFile  = "testdata/blowfish_1_ttable.casm"
	garbageFile = "testdata/garbage.casm"
)

// TestExitCodeMatrix pins the exit-status contract across the analyzer
// flags: 0 only when every requested analysis of every program is clean,
// 1 on any finding, 2 on usage errors.
func TestExitCodeMatrix(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"bad key", []string{"-builtin", "-key", "zz"}, 2},
		{"empty key", []string{"-builtin", "-key", ""}, 2},
		{"unknown flag", []string{"-nope", cleanFile}, 2},
		{"missing file", []string{"testdata/no_such.casm"}, 1},

		{"clean", []string{cleanFile}, 0},
		{"clean dataflow", []string{"-dataflow", cleanFile}, 0},
		{"clean equiv", []string{"-equiv", cleanFile}, 0},
		{"clean dataflow equiv", []string{"-dataflow", "-equiv", cleanFile}, 0},

		{"dirty", []string{dirtyFile}, 1},
		{"dirty dataflow", []string{"-dataflow", dirtyFile}, 1},
		{"dirty equiv", []string{"-equiv", dirtyFile}, 1},
		{"dirty dataflow equiv", []string{"-dataflow", "-equiv", dirtyFile}, 1},

		{"dirty then clean", []string{dirtyFile, cleanFile}, 1},

		// The -ct leg of the matrix: a proven constant-time profile and a
		// warn-only T-table profile both exit 0 (only Error findings dirty
		// the ct verdict); an unprovable program exits 1; a file the
		// assembler rejects exits 1 before any analysis runs.
		{"ct clean", []string{"-ct", cleanFile}, 0},
		{"ct warn-only", []string{"-ct", ttableFile}, 0},
		{"ct error", []string{"-ct", dirtyFile}, 1},
		{"ct unparseable", []string{"-ct", garbageFile}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(tc.args, &out, &errb); got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, out.String(), errb.String())
			}
		})
	}
}

// TestFullReport pins the full-report contract: a dirty file first in the
// argument list must not stop the clean file after it from being checked
// and reported.
func TestFullReport(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-equiv", dirtyFile, cleanFile}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1", got)
	}
	s := out.String()
	if !strings.Contains(s, "fall-off-end") {
		t.Errorf("dirty file's finding missing from output:\n%s", s)
	}
	if !strings.Contains(s, cleanFile+" clean") && !strings.Contains(s, "clean") {
		t.Errorf("clean file not reported after the dirty one:\n%s", s)
	}
	if !strings.Contains(s, "proven equivalent") {
		t.Errorf("clean file's equiv verdict missing:\n%s", s)
	}
	// The dirty file has an Error-severity finding, so its fastpath compile
	// is refused — reported as a skip, not silently dropped.
	if !strings.Contains(s, "equiv skipped") {
		t.Errorf("dirty file's equiv skip missing:\n%s", s)
	}
}

// TestBuiltinEquivGate runs the CI gate end-to-end: every built-in program
// is vetted and its compiled fastpath proven equivalent to the microcode
// (the key-request handshake program is skipped — it has no trace).
func TestBuiltinEquivGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builtin corpus sweep in -short mode")
	}
	var out, errb bytes.Buffer
	if got := run([]string{"-builtin", "-equiv"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", got, out.String(), errb.String())
	}
	s := out.String()
	if n := strings.Count(s, "proven equivalent"); n < 80 {
		t.Errorf("proved %d programs, want the full corpus (>= 80)\n%s", n, s)
	}
	if !strings.Contains(s, "rijndael-keyed-2         equiv skipped") {
		t.Errorf("key-handshake program not reported as skipped:\n%s", s)
	}
	if strings.Contains(s, "NOT proven") {
		t.Errorf("corpus contains unproven programs:\n%s", s)
	}
}

// TestCTVerdictLines pins the -ct output shape the gate and the
// EXPERIMENTS table key on.
func TestCTVerdictLines(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-ct", cleanFile, ttableFile}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", got, out.String(), errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "ct: constant-time profile proven; fastpath agrees") {
		t.Errorf("clean file's ct verdict missing:\n%s", s)
	}
	if !strings.Contains(s, "ct: t-table class (4 secret-indexed sites: 4 lut, 0 gf); fastpath agrees") {
		t.Errorf("t-table file's ct verdict missing:\n%s", s)
	}
	if !strings.Contains(s, "secret-lut-index") {
		t.Errorf("t-table warnings missing:\n%s", s)
	}
}

// TestBuiltinCTGate runs the side-channel CI gate end-to-end: every
// built-in program produces a side-channel profile with zero Error
// findings, every compiled fastpath profile agrees with its microcode
// profile, and the key-handshake program records its documented skip.
func TestBuiltinCTGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builtin corpus sweep in -short mode")
	}
	var out, errb bytes.Buffer
	if got := run([]string{"-builtin", "-ct"}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", got, out.String(), errb.String())
	}
	s := out.String()
	if n := strings.Count(s, " ct: "); n < 83 {
		t.Errorf("profiled %d programs, want the full corpus (>= 83)\n%s", n, s)
	}
	if n := strings.Count(s, "fastpath agrees"); n < 82 {
		t.Errorf("only %d fastpath profiles agree, want the full compiled corpus (>= 82)", n)
	}
	if strings.Contains(s, "NOT proven") || strings.Contains(s, "DISAGREES") {
		t.Errorf("corpus contains failing ct verdicts:\n%s", s)
	}
	if !strings.Contains(s, "rijndael-keyed-2         ct: t-table class") ||
		!strings.Contains(s, "fastpath skipped") {
		t.Errorf("key-handshake program's microcode-only verdict missing:\n%s", s)
	}
	// The class split must hold: ARX ciphers prove constant-time, S-box
	// ciphers are T-table class.
	for _, want := range []string{
		"tea-", "simon64-", "rc5-", "rc6-",
	} {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, want) && strings.Contains(line, " ct: ") &&
				!strings.Contains(line, "constant-time profile proven") {
				t.Errorf("ARX program not proven constant-time: %s", line)
			}
		}
	}
	for _, want := range []string{"rijndael-", "serpent-", "blowfish-", "des-", "gost-"} {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, want) && strings.Contains(line, " ct: ") &&
				!strings.Contains(line, "t-table class") {
				t.Errorf("S-box program not reported as t-table class: %s", line)
			}
		}
	}
}

// TestJSONReports pins the machine-readable output: one report per
// (subject, check) pair, parseable, with the findings of the text output.
func TestJSONReports(t *testing.T) {
	path := filepath.Join(t.TempDir(), "findings.json")
	var out, errb bytes.Buffer
	if got := run([]string{"-ct", "-dataflow", "-json", path, ttableFile, dirtyFile}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", got, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var reports []vet.JSONReport
	if err := json.Unmarshal(raw, &reports); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, raw)
	}
	byKey := map[string]vet.JSONReport{}
	for _, r := range reports {
		byKey[r.Name+"/"+r.Check] = r
	}
	ct, ok := byKey[ttableFile+"/ct"]
	if !ok {
		t.Fatalf("no ct report for %s in %v", ttableFile, byKey)
	}
	if !ct.Clean {
		t.Error("warn-only ct report not marked clean")
	}
	found := false
	for _, f := range ct.Findings {
		if f.Code == "secret-lut-index" && f.Severity == "warning" && f.Addr != nil {
			found = true
		}
	}
	if !found {
		t.Errorf("secret-lut-index finding missing from JSON: %+v", ct.Findings)
	}
	if r, ok := byKey[dirtyFile+"/ct"]; !ok || r.Clean {
		t.Errorf("dirty file's ct report missing or clean: %+v", r)
	}
	if r, ok := byKey[dirtyFile+"/vet"]; !ok || r.Clean {
		t.Errorf("dirty file's vet report missing or clean: %+v", r)
	}
	if _, ok := byKey[ttableFile+"/dataflow"]; !ok {
		t.Errorf("dataflow report missing for %s", ttableFile)
	}
}

// TestJSONToStdout: "-json -" writes the document to standard output.
func TestJSONToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-json", "-", cleanFile}, &out, &errb); got != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", got, errb.String())
	}
	var reports []vet.JSONReport
	dec := json.NewDecoder(strings.NewReader(out.String()))
	// The human-readable report precedes the JSON document; skip to it.
	s := out.String()
	idx := strings.Index(s, "[")
	if idx < 0 {
		t.Fatalf("no JSON document on stdout:\n%s", s)
	}
	dec = json.NewDecoder(strings.NewReader(s[idx:]))
	if err := dec.Decode(&reports); err != nil {
		t.Fatalf("decode: %v\n%s", err, s)
	}
	if len(reports) != 1 || reports[0].Check != "vet" || !reports[0].Clean {
		t.Errorf("reports = %+v", reports)
	}
}
