// Command cobra-lint runs the repository's Go-source analyzer suite
// (package lint): stdlib-only syntactic analyzers in the go/analysis
// multichecker shape.
//
// Usage:
//
//	cobra-lint ./...               # lint the whole tree below the current dir
//	cobra-lint internal/farm       # lint one directory
//	cobra-lint file.go             # lint one file
//	cobra-lint -json out.json ./...   # ...plus machine-readable findings
//
// Analyzers: deprecated (no new callers of the deprecated program.Encrypt*
// wrappers), hotpath (no fmt or allocation-prone calls inside
// //cobra:hotpath functions), hotpathpanic (no panic or log.Fatal* calls
// inside //cobra:hotpath functions). Like cobra-vet, cobra-lint is
// full-report: every requested file is checked and every finding printed
// before the exit status (1 on findings, 2 on usage) is decided.
//
// With -json <path> the findings are additionally written in the shared
// machine-readable report schema of cobra-vet -json ("-": stdout) — the CI
// artifact format.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cobra/internal/lint"
	"cobra/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool behind an exit code, testable without a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cobra-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: cobra-lint [-json path] <package-dir|./...|file.go>...")
		fs.PrintDefaults()
	}
	jsonPath := fs.String("json", "", `write machine-readable findings to this path ("-": stdout)`)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	dirty := false
	var jsonReports []vet.JSONReport
	report := func(arg string, findings []lint.Finding, err error) {
		if err != nil {
			dirty = true
			fmt.Fprintln(stderr, "cobra-lint:", err)
			if *jsonPath != "" {
				jsonReports = append(jsonReports, vet.JSONReport{Name: arg, Check: "lint",
					Findings: []vet.JSONFinding{{Severity: "error", Code: "lint-failure", Msg: err.Error()}}})
			}
			return
		}
		jr := vet.JSONReport{Name: arg, Check: "lint", Clean: len(findings) == 0, Findings: []vet.JSONFinding{}}
		for _, f := range findings {
			dirty = true
			fmt.Fprintln(stdout, f)
			jr.Findings = append(jr.Findings, vet.JSONFinding{
				Severity: "error",
				Code:     f.Code,
				Msg:      f.Msg,
				File:     f.Pos.Filename,
				SrcLine:  f.Pos.Line,
				SrcCol:   f.Pos.Column,
			})
		}
		if *jsonPath != "" {
			jsonReports = append(jsonReports, jr)
		}
	}

	for _, arg := range fs.Args() {
		switch {
		case strings.HasSuffix(arg, "/..."):
			findings, err := lint.CheckDir(strings.TrimSuffix(arg, "/..."), os.ReadFile)
			report(arg, findings, err)
		case strings.HasSuffix(arg, ".go"):
			src, err := os.ReadFile(arg)
			if err != nil {
				report(arg, nil, err)
				continue
			}
			findings, err := lint.CheckSource(arg, src)
			report(arg, findings, err)
		default:
			findings, err := lint.CheckDir(arg, os.ReadFile)
			report(arg, findings, err)
		}
	}

	if *jsonPath != "" {
		out := stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintf(stderr, "cobra-lint: -json: %v\n", err)
				return 2
			}
			defer f.Close()
			out = f
		}
		if err := vet.WriteJSON(out, jsonReports); err != nil {
			fmt.Fprintf(stderr, "cobra-lint: -json: %v\n", err)
			return 2
		}
	}

	if dirty {
		return 1
	}
	return 0
}
