package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"cobra/internal/core"
	"cobra/internal/farm"
	"cobra/internal/obs"
)

// Options configures a Server. The zero value is usable: a single-device
// backend per configuration, an 8-entry backend LRU, and the default
// frame limit.
type Options struct {
	// Backend selects what serves each tenant configuration: "device"
	// (default — one simulated COBRA chip per configuration) or "farm"
	// (a pool of Workers replicated chips; non-feedback modes shard).
	Backend string
	// Workers is the worker-pool width shared by every farm backend
	// (default 4; ignored for "device"). One pool serves all tenant
	// configurations: the scheduler keeps each worker's device bound to
	// one (program, key) so tenant traffic avoids reconfigurations.
	Workers int
	// MinWorkers is the floor the shared pool quiesces down to when
	// idle (default 1; ignored for "device").
	MinWorkers int
	// SchedPolicy selects the pool's placement policy: "affinity"
	// (default — program-aware, work stealing, elastic) or
	// "roundrobin" (the baseline). Ignored for "device".
	SchedPolicy string
	// MaxBackends bounds the LRU of configured backends (default 8).
	// Distinct (algorithm, key, unroll) triples beyond this evict the
	// least-recently-used idle backend; if every cached backend is
	// pinned by a live session, CONFIGURE answers BUSY.
	MaxBackends int
	// MaxInflight bounds concurrently executing requests per backend.
	// Default: 1 for "device" (a Device is single-goroutine by
	// contract), Workers for "farm". "device" is clamped to 1.
	MaxInflight int
	// MaxWaiters bounds requests queued behind the inflight ones before
	// admission control sheds BUSY (default 2*MaxInflight).
	MaxWaiters int
	// MaxFrame is the advertised payload-size ceiling in bytes
	// (default DefaultMaxFrame, clamped to AbsMaxFrame).
	MaxFrame uint32
	// Interpreter forces the cycle-accurate interpreter (no fastpath) —
	// the comparison/debugging path, and what the cancellation tests
	// use to make requests slow enough to abandon mid-flight.
	Interpreter bool
	// Metrics, when non-nil, is the parent registry the server's own
	// registry attaches to (obs.Default in cobrad). Nil keeps it
	// detached — hermetic, the right default for tests.
	Metrics *obs.Registry
	// Logf receives server lifecycle logs (nil: silent).
	Logf func(format string, args ...any)
}

// withDefaults normalizes an Options.
func (o Options) withDefaults() (Options, error) {
	switch o.Backend {
	case "":
		o.Backend = "device"
	case "device", "farm":
	default:
		return o, fmt.Errorf("serve: unknown backend %q (want device or farm)", o.Backend)
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.MaxBackends <= 0 {
		o.MaxBackends = 8
	}
	if o.MaxInflight <= 0 {
		if o.Backend == "farm" {
			o.MaxInflight = o.Workers
		} else {
			o.MaxInflight = 1
		}
	}
	if o.Backend == "device" {
		o.MaxInflight = 1 // a Device is single-goroutine by contract
	}
	if o.MaxWaiters <= 0 {
		o.MaxWaiters = 2 * o.MaxInflight
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.MaxFrame > AbsMaxFrame {
		o.MaxFrame = AbsMaxFrame
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o, nil
}

// Server is the multi-tenant cipher daemon: a TCP listener whose
// connections are tenant sessions over a shared, capacity-bounded pool
// of configured backends. See the package comment for the protocol and
// cmd/cobrad for the binary.
type Server struct {
	opts  Options
	reg   *obs.Registry
	met   *serverMetrics
	cache *cache
	// pool is the worker pool shared by every farm backend (nil for the
	// device backend). Tenants opened on it keep program affinity across
	// backend evictions and re-CONFIGUREs.
	pool *farm.Pool

	ln         net.Listener
	acceptDone chan struct{}

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	tenants  map[string]*tenantMetrics
	draining bool
	drainCh  chan struct{}

	wg sync.WaitGroup // live sessions
}

// NewServer builds a server (not yet listening; call Start).
func NewServer(opts Options) (*Server, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		reg:     obs.NewRegistry(obs.L("component", "cobrad")),
		conns:   make(map[net.Conn]struct{}),
		tenants: make(map[string]*tenantMetrics),
		drainCh: make(chan struct{}),
	}
	s.met = newServerMetrics(s.reg)
	if opts.Backend == "farm" {
		pool, err := farm.NewPool(farm.Options{
			Workers:    opts.Workers,
			MinWorkers: opts.MinWorkers,
			Policy:     farm.Policy(opts.SchedPolicy),
		})
		if err != nil {
			return nil, err
		}
		s.pool = pool
		s.reg.Attach(pool.Obs())
	}
	s.cache = newCache(opts.MaxBackends, s.buildBackend)
	s.cache.hits = s.reg.Counter("cobra_serve_backend_hits_total",
		"CONFIGUREs served from the backend LRU (no reconfiguration paid).")
	s.cache.misses = s.reg.Counter("cobra_serve_backend_misses_total",
		"CONFIGUREs that configured a new backend.")
	s.cache.evictions = s.reg.Counter("cobra_serve_backend_evictions_total",
		"Backends closed by LRU eviction.")
	s.cache.size = s.reg.Gauge("cobra_serve_backends",
		"Configured backends currently cached.")
	s.cache.attach = func(b *backend) {
		s.reg.Attach(b.reg, obs.L("config", b.key.fingerprint()))
	}
	s.cache.detach = func(b *backend) { s.reg.Detach(b.reg) }
	if opts.Metrics != nil {
		opts.Metrics.Attach(s.reg)
	}
	return s, nil
}

// Obs returns the server's metrics registry (serve-level series plus
// every cached backend's subtree under config="…" labels).
func (s *Server) Obs() *obs.Registry { return s.reg }

// buildBackend configures a new backend for a (program, key) pair — the
// expensive operation (microcode compile + fastpath trace recording)
// the LRU exists to amortize.
func (s *Server) buildBackend(k backendKey, e *backend) error {
	cfg := core.Config{Unroll: k.unroll, Interpreter: s.opts.Interpreter}
	switch s.opts.Backend {
	case "farm":
		f, err := s.pool.Open(k.alg, []byte(k.key), cfg)
		if err != nil {
			return err
		}
		sum := f.Summary()
		e.cipher, e.closer, e.reg = f, f.Close, f.Obs()
		e.queueDepth, e.queueCap = f.QueueDepth, f.QueueCapacity()
		e.workers, e.rows, e.unroll = f.Workers(), sum.Rows, sum.Unroll
		e.fastpath = f.UsesFastpath()
	default:
		d, err := core.Configure(k.alg, []byte(k.key), cfg)
		if err != nil {
			return err
		}
		sum := d.Summary()
		e.cipher, e.reg = d, d.Obs()
		e.workers, e.rows, e.unroll = 1, sum.Rows, sum.Unroll
		e.fastpath = d.UsesFastpath()
	}
	e.sem = make(chan struct{}, s.opts.MaxInflight)
	e.maxWaiters = int64(s.opts.MaxWaiters)
	s.opts.Logf("serve: configured backend %s (%s, workers=%d, fastpath=%v)",
		e.key.fingerprint(), s.opts.Backend, e.workers, e.fastpath)
	return nil
}

// Start binds addr and begins accepting sessions in the background.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.acceptDone = make(chan struct{})
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listener address (after Start).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain or Close
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			_ = WriteFrame(conn, Frame{Type: FrameError,
				Payload: EncodeError(CodeDraining, "server draining")})
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.met.sessions.Inc()
		s.met.sessionsActive.Add(1)
		go s.serveConn(conn)
	}
}

// tenantMetricsFor returns the (shared) series set for a tenant label.
func (s *Server) tenantMetricsFor(tenant string) *tenantMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	tm, ok := s.tenants[tenant]
	if !ok {
		tm = newTenantMetrics(s.reg, tenant)
		s.tenants[tenant] = tm
	}
	return tm
}

// session is one connection's state.
type session struct {
	srv    *Server
	conn   net.Conn
	bw     *bufio.Writer
	ctx    context.Context
	cancel context.CancelFunc

	helloDone bool
	tenant    string
	tm        *tenantMetrics
	backend   *backend
}

// write sends one frame, reporting whether the connection is still good.
func (sess *session) write(f Frame) bool {
	if err := WriteFrame(sess.bw, f); err != nil {
		return false
	}
	if err := sess.bw.Flush(); err != nil {
		return false
	}
	sess.srv.met.bytesOut.Add(int64(len(f.Payload)))
	return true
}

// writeError sends an ERROR frame and accounts it to the session's
// tenant (if configured).
func (sess *session) writeError(code uint16, msg string) bool {
	if sess.tm != nil {
		if code == CodeBusy {
			sess.tm.sheds.Inc()
		} else {
			sess.tm.errors.Inc()
		}
	}
	return sess.write(Frame{Type: FrameError, Payload: EncodeError(code, msg)})
}

// serveConn runs one session: a reader goroutine feeds frames to the
// processing loop, so a client disconnect cancels the session context —
// and with it any in-flight backend work — instead of waiting for the
// response write to fail.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	sess := &session{srv: s, conn: conn, bw: bufio.NewWriter(conn), ctx: ctx, cancel: cancel}
	defer func() {
		cancel()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if sess.backend != nil {
			s.cache.release(sess.backend)
			sess.backend = nil
		}
		s.met.sessionsActive.Add(-1)
	}()

	var readErr error // written before frames closes, read after
	frames := make(chan Frame)
	go func() {
		br := bufio.NewReader(conn)
		for {
			f, err := ReadFrame(br, s.opts.MaxFrame)
			if err != nil {
				readErr = err
				cancel() // abandon in-flight backend work: client is gone or desynced
				close(frames)
				return
			}
			select {
			case frames <- f:
			case <-ctx.Done():
				close(frames)
				return
			}
		}
	}()

	for {
		select {
		case <-s.drainCh:
			// Graceful drain: serve at most one already-queued frame, then
			// announce. A frame mid-processing always completes — this loop
			// is the processor — so accepted requests are never dropped.
			select {
			case f, ok := <-frames:
				if ok && !s.handleFrame(sess, f) {
					return
				}
			default:
			}
			sess.writeError(CodeDraining, "server draining")
			s.met.drained.Inc()
			return
		case f, ok := <-frames:
			if !ok {
				if readErr != nil && !isDisconnect(readErr) {
					// The stream is desynced, not gone: tell the client why
					// before hanging up.
					code := CodeMalformed
					if errors.Is(readErr, ErrTooLarge) {
						code = CodeTooLarge
					}
					sess.writeError(code, readErr.Error())
				}
				return
			}
			if !s.handleFrame(sess, f) {
				return
			}
		}
	}
}

// isDisconnect classifies read errors that mean "peer went away" (vs. a
// protocol violation worth answering).
func isDisconnect(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// handleFrame serves one request frame, reporting whether the session
// should continue.
func (s *Server) handleFrame(sess *session, f Frame) bool {
	s.met.framesIn.Inc()
	s.met.bytesIn.Add(int64(len(f.Payload)))
	switch f.Type {
	case FrameHello:
		return s.handleHello(sess, f)
	case FrameConfigure:
		return s.handleConfigure(sess, f)
	case FrameEncrypt, FrameDecrypt:
		return s.handleCipher(sess, f)
	case FrameStats:
		return s.handleStats(sess, f)
	default: // FrameError from a client is a protocol violation
		sess.writeError(CodeSequence, fmt.Sprintf("unexpected %v frame", f.Type))
		return false
	}
}

func (s *Server) handleHello(sess *session, f Frame) bool {
	if sess.helloDone {
		return sess.writeError(CodeSequence, "duplicate hello")
	}
	h, err := DecodeHello(f.Payload)
	if err != nil {
		sess.writeError(CodeMalformed, err.Error())
		return false
	}
	if h.MinVersion > Version || h.MaxVersion < Version {
		sess.writeError(CodeVersion,
			fmt.Sprintf("server speaks version %d, client offers %d..%d", Version, h.MinVersion, h.MaxVersion))
		return false
	}
	sess.helloDone = true
	ack := HelloAck{
		Version:  Version,
		MaxFrame: s.opts.MaxFrame,
		Backend:  s.opts.Backend,
		Workers:  uint16(s.opts.Workers),
	}
	if s.opts.Backend == "device" {
		ack.Workers = 1
	}
	return sess.write(Frame{Type: FrameHello, Payload: ack.Encode()})
}

func (s *Server) handleConfigure(sess *session, f Frame) bool {
	if !sess.helloDone {
		return sess.writeError(CodeSequence, "configure before hello")
	}
	c, err := DecodeConfigureReq(f.Payload)
	if err != nil {
		sess.writeError(CodeMalformed, err.Error())
		return false
	}
	alg := core.Algorithm(c.Alg)
	if _, err := alg.TotalRounds(); err != nil {
		return sess.writeError(CodeBadRequest, err.Error())
	}
	tenant := c.Tenant
	if tenant == "" {
		tenant = "default"
	}
	k := backendKey{alg: alg, unroll: int(c.Unroll), key: string(c.Key)}
	b, hit, err := s.cache.acquire(sess.ctx, k)
	if err != nil {
		switch {
		case errors.Is(err, errCacheBusy):
			return sess.writeError(CodeBusy, err.Error())
		case sess.ctx.Err() != nil:
			return false
		default: // configuration error: bad key size, bad unroll, …
			return sess.writeError(CodeBadRequest, err.Error())
		}
	}
	// Re-CONFIGURE releases the previous pin: the session's backend
	// swaps atomically from its own goroutine's view.
	if sess.backend != nil {
		s.cache.release(sess.backend)
	}
	sess.backend = b
	sess.tenant = tenant
	sess.tm = s.tenantMetricsFor(tenant)
	if hit {
		sess.tm.cacheHits.Inc()
	}
	ack := ConfigureAck{
		Backend:  s.opts.Backend,
		Workers:  uint16(b.workers),
		Rows:     uint16(b.rows),
		Unroll:   uint16(b.unroll),
		Fastpath: b.fastpath,
		CacheHit: hit,
	}
	return sess.write(Frame{Type: FrameConfigure, Payload: ack.Encode()})
}

func (s *Server) handleCipher(sess *session, f Frame) bool {
	if sess.backend == nil {
		return sess.writeError(CodeSequence, "encrypt/decrypt before configure")
	}
	req, err := DecodeCipherReq(f.Payload)
	if err != nil {
		sess.writeError(CodeMalformed, err.Error())
		return false
	}
	op := opEncrypt
	if f.Type == FrameDecrypt {
		op = opDecrypt
	}
	sess.tm.requests[op].Inc()
	b := sess.backend

	// Admission control, two layers: the farm's own backpressure signal
	// (all worker queues full: the next dispatch would block), then the
	// per-backend execution slots and bounded wait queue.
	if b.queueDepth != nil && b.queueDepth() >= b.queueCap {
		return sess.writeError(CodeBusy, "backend queues full")
	}
	if err := b.acquireSlot(sess.ctx); err != nil {
		if errors.Is(err, errBusySlot) {
			return sess.writeError(CodeBusy, err.Error())
		}
		return false // client disconnected while queued
	}
	sp := sess.tm.latency[op].Start()
	out, err := s.runCipher(sess.ctx, b, f.Type, req)
	sp.End()
	b.releaseSlot()
	if err != nil {
		if sess.ctx.Err() != nil {
			return false // disconnected mid-request; work was abandoned
		}
		var we *WireError
		if errors.As(err, &we) {
			return sess.writeError(we.Code, we.Msg)
		}
		return sess.writeError(CodeBadRequest, err.Error())
	}
	sess.tm.blocks.Add(int64((len(req.Data) + 15) / 16))
	return sess.write(Frame{Type: f.Type, Payload: out})
}

// runCipher dispatches one ENCRYPT/DECRYPT to the backend.
func (s *Server) runCipher(ctx context.Context, b *backend, t FrameType, req CipherReq) ([]byte, error) {
	if t == FrameEncrypt {
		switch req.Mode {
		case ModeECB:
			return b.cipher.EncryptECB(ctx, req.Data)
		case ModeCBC:
			return b.cipher.EncryptCBC(ctx, req.IV, req.Data)
		default:
			return b.cipher.EncryptCTR(ctx, req.IV, req.Data)
		}
	}
	switch req.Mode {
	case ModeECB:
		return b.cipher.DecryptECB(ctx, req.Data)
	case ModeCBC:
		return b.cipher.DecryptCBC(ctx, req.IV, req.Data)
	default:
		return b.cipher.DecryptCTR(ctx, req.IV, req.Data)
	}
}

// StatsReply is the JSON payload answering a STATS frame.
type StatsReply struct {
	Tenant string `json:"tenant"`
	// Per-tenant serve-level counters (shared across the tenant's
	// sessions).
	Encrypts int64 `json:"encrypts"`
	Decrypts int64 `json:"decrypts"`
	Sheds    int64 `json:"sheds"`
	Errors   int64 `json:"errors"`
	Blocks   int64 `json:"blocks"`
	// Backend is the pinned backend's performance view.
	Backend core.Summary `json:"backend"`
}

func (s *Server) handleStats(sess *session, f Frame) bool {
	if sess.backend == nil {
		return sess.writeError(CodeSequence, "stats before configure")
	}
	if len(f.Payload) != 0 {
		sess.writeError(CodeMalformed, "stats carries no payload")
		return false
	}
	sess.tm.requests[opStats].Inc()
	sp := sess.tm.latency[opStats].Start()
	reply := StatsReply{
		Tenant:   sess.tenant,
		Encrypts: sess.tm.requests[opEncrypt].Value(),
		Decrypts: sess.tm.requests[opDecrypt].Value(),
		Sheds:    sess.tm.sheds.Value(),
		Errors:   sess.tm.errors.Value(),
		Blocks:   sess.tm.blocks.Value(),
		Backend:  sess.backend.cipher.Summary(),
	}
	sp.End()
	p, err := json.Marshal(reply)
	if err != nil {
		return sess.writeError(CodeInternal, err.Error())
	}
	return sess.write(Frame{Type: FrameStats, Payload: p})
}

// Shutdown drains the server gracefully: the listener closes (new
// connections are refused with CodeDraining), every session finishes
// its in-flight frame — plus at most one already-queued frame — and is
// told CodeDraining, and the cached backends are closed. ctx bounds the
// wait: on expiry the remaining connections are force-closed and ctx's
// error is returned. Shutdown is idempotent and safe to call
// concurrently.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
		if s.ln != nil {
			s.ln.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done // sessions exit promptly once their conns die
	}
	if s.acceptDone != nil {
		<-s.acceptDone
	}
	s.cache.closeAll()
	if s.pool != nil {
		s.pool.Close() // idempotent; tenants were closed by closeAll
	}
	s.mu.Lock()
	if s.opts.Metrics != nil {
		s.opts.Metrics.Detach(s.reg)
	}
	s.mu.Unlock()
	return err
}

// Close shuts the server down immediately (Shutdown with an expired
// deadline): connections are force-closed.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
