// custom-cipher demonstrates the §1 scenario that closes the paper's case
// for reconfigurable hardware over ASICs: "applications exist which require
// modification of a standardized algorithm, e.g., by using proprietary
// S-Boxes or permutations. Such modifications are easily made with
// reconfigurable hardware."
//
// The example defines ROTOR, a toy proprietary 4-round SP cipher (per-round
// key XOR from the eRAMs, proprietary paged 4-bit S-boxes, fixed rotations,
// and a proprietary byte permutation on the shufflers), writes it directly
// in COBRA assembly, assembles it with the toolchain, runs it on the
// cycle-accurate machine, and validates the datapath against an independent
// Go model of the same cipher. No compiler support was needed — the cipher
// exists only as a page of assembly.
//
// (ROTOR is a demonstration vehicle, not a secure cipher.)
package main

import (
	"fmt"
	"log"
	"strings"

	"cobra/internal/asm"
	"cobra/internal/bits"
	"cobra/internal/datapath"
	"cobra/internal/sim"
)

// The proprietary material: four 4-bit S-box pages and four round keys.
var (
	sboxPages = [4][16]uint8{
		{0xc, 0x5, 0x6, 0xb, 0x9, 0x0, 0xa, 0xd, 0x3, 0xe, 0xf, 0x8, 0x4, 0x7, 0x1, 0x2},
		{0x7, 0xd, 0xe, 0x3, 0x0, 0x6, 0x9, 0xa, 0x1, 0x2, 0x8, 0x5, 0xb, 0xc, 0x4, 0xf},
		{0x2, 0xc, 0x4, 0x1, 0x7, 0xa, 0xb, 0x6, 0x8, 0x5, 0x3, 0xf, 0xd, 0x0, 0xe, 0x9},
		{0xf, 0x1, 0x8, 0xe, 0x6, 0xb, 0x3, 0x4, 0x9, 0x7, 0x2, 0xd, 0xc, 0x0, 0x5, 0xa},
	}
	roundKeys = [4][4]uint32{
		{0x0123a5b4, 0x45670ff0, 0x89ab1234, 0xcdef9876},
		{0x11111111, 0x22222222, 0x33333333, 0x44444444},
		{0xdeadbeef, 0xcafebabe, 0x0badf00d, 0xfeedface},
		{0xa5a5a5a5, 0x5a5a5a5a, 0x3c3c3c3c, 0xc3c3c3c3},
	}
	rotAmounts = [4]uint8{5, 8, 11, 14}
)

// assembleROTOR writes the cipher as COBRA assembly source.
func assembleROTOR() string {
	var b strings.Builder
	b.WriteString("; ROTOR: a proprietary 4-round SP cipher, handwritten for COBRA\n")
	b.WriteString("DISOUT all\n")

	// Proprietary S-box pages into every 4->4 bank (pages 0..3).
	for bank := 0; bank < 4; bank++ {
		for group := 0; group < 8; group++ { // pages 0-3 occupy groups 0-7
			page, half := group/2, group%2
			var word uint32
			for i := 0; i < 8; i++ {
				word |= uint32(sboxPages[page][half*8+i]) << (4 * i)
			}
			fmt.Fprintf(&b, "LUTLD all S4 BANK %d GROUP %d 0x%08x\n", bank, group, word)
		}
	}

	// Round rows: key XOR, proprietary S-box page, fixed rotation.
	for r := 0; r < 4; r++ {
		fmt.Fprintf(&b, "CFGE r%d A1 XOR INER\n", r)
		fmt.Fprintf(&b, "CFGE r%d C S4 PAGE %d\n", r, r)
		fmt.Fprintf(&b, "CFGE r%d E3 ROTL IMM %d\n", r, rotAmounts[r])
		fmt.Fprintf(&b, "CFGE r%d ER BANK 0 ADDR %d\n", r, r)
	}

	// Round keys into the eRAMs.
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			fmt.Fprintf(&b, "ERAMW c%d BANK 0 ADDR %d 0x%08x\n", c, r, roundKeys[r][c])
		}
	}

	// Proprietary byte permutation: rotate the 16-byte stream left by one
	// on both shufflers (between rounds 0/1 and 2/3).
	for s := 0; s < 2; s++ {
		fmt.Fprintf(&b, "SHUF %d LO 1 2 3 4 5 6 7 8\n", s)
		fmt.Fprintf(&b, "SHUF %d HI 9 10 11 12 13 14 15 0\n", s)
	}

	b.WriteString("INMUX EXT\n")
	b.WriteString("idle: FLAG SET READY\n")
	b.WriteString("FLAG SET BUSY,DVALID CLR READY\n")
	b.WriteString("ENOUT all\n")
	b.WriteString("loop: NOP\n")
	b.WriteString("JMP loop\n")

	return b.String()
}

// rotorModel is the independent Go model of the same cipher.
func rotorModel(blk bits.Block128) bits.Block128 {
	byteRotate := func(v bits.Block128) bits.Block128 {
		var out bits.Block128
		for i := 0; i < 16; i++ {
			out = out.SetByte(i, v.Byte((i+1)%16))
		}
		return out
	}
	for r := 0; r < 4; r++ {
		if r == 1 || r == 3 {
			blk = byteRotate(blk)
		}
		for c := 0; c < 4; c++ {
			w := blk[c] ^ roundKeys[r][c]
			var sub uint32
			for lane := 0; lane < 8; lane++ {
				n := w >> (4 * uint(lane)) & 0xf
				sub |= uint32(sboxPages[r][n]) << (4 * uint(lane))
			}
			blk[c] = bits.RotL(sub, uint(rotAmounts[r]))
		}
	}
	return blk
}

func main() {
	src := assembleROTOR()
	words, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ROTOR assembled: %d lines of assembly -> %d microcode words\n",
		strings.Count(src, "\n"), len(words))

	m, err := sim.New(datapath.BaseGeometry(), 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadProgram(words); err != nil {
		log.Fatal(err)
	}
	if reason, err := m.Run(sim.Limits{}); err != nil || reason != sim.StopWaitGo {
		log.Fatalf("setup: %v %v", reason, err)
	}

	// Stream a few blocks and validate against the independent model.
	inputs := []bits.Block128{
		{0x00000000, 0x00000000, 0x00000000, 0x00000000},
		{0x01234567, 0x89abcdef, 0xfedcba98, 0x76543210},
		{0xffffffff, 0xffffffff, 0xffffffff, 0xffffffff},
		{0x00112233, 0x44556677, 0x8899aabb, 0xccddeeff},
	}
	m.PushInput(inputs...)
	m.Go = true
	if _, err := m.Run(sim.Limits{StopAfterOutputs: len(inputs)}); err != nil {
		log.Fatal(err)
	}
	outs := m.Outputs()
	allOK := true
	for i, in := range inputs {
		want := rotorModel(in)
		ok := outs[i] == want
		allOK = allOK && ok
		fmt.Printf("  block %d: datapath %08x  model %08x  match=%v\n",
			i, outs[i], want, ok)
	}
	if !allOK {
		log.Fatal("datapath disagrees with the model")
	}
	st := m.Stats()
	fmt.Printf("cycles: %d for %d blocks (combinational 4-round pipeline, 1 block/cycle)\n",
		st.Cycles, st.BlocksOut)
	fmt.Println("a proprietary cipher deployed as one page of microcode — no new silicon.")
}
