package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameHello, Payload: Hello{MinVersion: 1, MaxVersion: 1}.Encode()},
		{Type: FrameHello, Payload: HelloAck{Version: 1, MaxFrame: DefaultMaxFrame, Backend: "farm", Workers: 4}.Encode()},
		{Type: FrameConfigure, Payload: ConfigureReq{Tenant: "site-a", Alg: "rc6", Key: make([]byte, 16), Unroll: 2}.Encode()},
		{Type: FrameConfigure, Payload: ConfigureAck{Backend: "device", Workers: 1, Rows: 20, Unroll: 20, Fastpath: true}.Encode()},
		{Type: FrameEncrypt, Payload: CipherReq{Mode: ModeCTR, IV: make([]byte, 16), Data: []byte("0123456789abcdef")}.Encode()},
		{Type: FrameDecrypt, Payload: CipherReq{Mode: ModeECB, Data: make([]byte, 32)}.Encode()},
		{Type: FrameStats},
		{Type: FrameError, Payload: EncodeError(CodeBusy, "queue full")},
	}
	for _, f := range frames {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("%v: write: %v", f.Type, err)
		}
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("%v: read: %v", f.Type, err)
		}
		if got.Type != f.Type || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("%v: round trip mismatch", f.Type)
		}
		if buf.Len() != 0 {
			t.Fatalf("%v: %d trailing bytes", f.Type, buf.Len())
		}
	}
}

func TestReadFrameMalformedHeader(t *testing.T) {
	valid := AppendFrame(nil, Frame{Type: FrameStats})
	cases := []struct {
		name   string
		mangle func([]byte) []byte
		want   error
	}{
		{"zero type", func(b []byte) []byte { b[0] = 0; return b }, ErrMalformed},
		{"unknown type", func(b []byte) []byte { b[0] = 200; return b }, ErrMalformed},
		{"flags set", func(b []byte) []byte { b[1] = 1; return b }, ErrMalformed},
		{"reserved set", func(b []byte) []byte { b[2] = 7; return b }, ErrMalformed},
		{"oversize length", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[4:], 1<<30)
			return b
		}, ErrTooLarge},
	}
	for _, tc := range cases {
		b := tc.mangle(append([]byte(nil), valid...))
		if _, err := ReadFrame(bytes.NewReader(b), 0); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestReadFrameMaxLengthEnforced(t *testing.T) {
	f := Frame{Type: FrameEncrypt, Payload: make([]byte, 100)}
	b := AppendFrame(nil, f)
	if _, err := ReadFrame(bytes.NewReader(b), 99); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("payload over limit: got %v, want ErrTooLarge", err)
	}
	if _, err := ReadFrame(bytes.NewReader(b), 100); err != nil {
		t.Fatalf("payload at limit: %v", err)
	}
	// The oversize length must be rejected from the header alone, before
	// any payload byte is read.
	hdrOnly := b[:headerSize]
	if _, err := ReadFrame(bytes.NewReader(hdrOnly), 99); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("header-only over limit: got %v, want ErrTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	b := AppendFrame(nil, Frame{Type: FrameEncrypt, Payload: make([]byte, 64)})
	for _, cut := range []int{1, headerSize - 1, headerSize + 1, len(b) - 1} {
		_, err := ReadFrame(bytes.NewReader(b[:cut]), 0)
		if err == nil {
			t.Fatalf("cut=%d: truncated frame accepted", cut)
		}
		if cut > headerSize && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: got %v, want unexpected EOF", cut, err)
		}
	}
}

func TestPayloadStrictness(t *testing.T) {
	// Trailing bytes are rejected by every decoder.
	if _, err := DecodeHello(append(Hello{1, 1}.Encode(), 0)); !errors.Is(err, ErrMalformed) {
		t.Errorf("hello trailing byte: %v", err)
	}
	if _, err := DecodeConfigureReq(append(ConfigureReq{Alg: "rc6"}.Encode(), 0)); !errors.Is(err, ErrMalformed) {
		t.Errorf("configure trailing byte: %v", err)
	}
	if _, err := DecodeCipherReq(append(CipherReq{Mode: ModeECB}.Encode(), 0)); !errors.Is(err, ErrMalformed) {
		t.Errorf("cipher trailing byte: %v", err)
	}
	// Bad magic.
	h := Hello{1, 1}.Encode()
	h[0] = 'X'
	if _, err := DecodeHello(h); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad magic: %v", err)
	}
	// Inverted version range.
	if _, err := DecodeHello(Hello{MinVersion: 2, MaxVersion: 1}.Encode()); !errors.Is(err, ErrMalformed) {
		t.Errorf("inverted versions: %v", err)
	}
	// IV discipline.
	if _, err := DecodeCipherReq(CipherReq{Mode: ModeECB, IV: make([]byte, 16)}.Encode()); !errors.Is(err, ErrMalformed) {
		t.Errorf("ecb with IV: %v", err)
	}
	if _, err := DecodeCipherReq(CipherReq{Mode: ModeCTR, IV: make([]byte, 8)}.Encode()); !errors.Is(err, ErrMalformed) {
		t.Errorf("short IV: %v", err)
	}
	// Tenant label discipline.
	if _, err := DecodeConfigureReq(ConfigureReq{Tenant: "bad tenant!", Alg: "rc6"}.Encode()); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad tenant: %v", err)
	}
	if _, err := DecodeConfigureReq(ConfigureReq{Tenant: strings.Repeat("a", MaxTenantLen+1), Alg: "rc6"}.Encode()); !errors.Is(err, ErrMalformed) {
		t.Errorf("long tenant: %v", err)
	}
}

func TestPayloadCodecFixedPoints(t *testing.T) {
	cr := ConfigureReq{Tenant: "t.0_a-B", Alg: "rijndael", Key: []byte{1, 2, 3}, Unroll: 10}
	got, err := DecodeConfigureReq(cr.Encode())
	if err != nil || !reflect.DeepEqual(got, cr) {
		t.Fatalf("configure req: %+v, %v", got, err)
	}
	ca := ConfigureAck{Backend: "farm", Workers: 8, Rows: 44, Unroll: 4, Fastpath: true, CacheHit: true}
	gotA, err := DecodeConfigureAck(ca.Encode())
	if err != nil || gotA != ca {
		t.Fatalf("configure ack: %+v, %v", gotA, err)
	}
	we, err := DecodeError(EncodeError(CodeDraining, "shutting down"))
	if err != nil || we.Code != CodeDraining || we.Msg != "shutting down" {
		t.Fatalf("error payload: %+v, %v", we, err)
	}
	if !IsDraining(we) || IsBusy(we) {
		t.Fatalf("error classification: %+v", we)
	}
}
