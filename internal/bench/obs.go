package bench

import (
	"cobra/internal/obs"
	"cobra/internal/sim"
)

// Metrics, when non-nil, is the registry every bench-owned machine binds
// its sim observer to, so a sweep's simulator activity shows up in the
// cobra_sim_* families (cobra-bench -metrics-dump sets it to obs.Default
// and prints the exposition at exit). Nil — the default — keeps
// measurement machines unobserved and library users hermetic. Not safe to
// flip while a measurement is running.
var Metrics *obs.Registry

// observe binds m to the opt-in registry. Called before program.Load so
// the setup phase is counted, matching a Device's accounting.
func observe(m *sim.Machine) {
	if Metrics != nil {
		m.Obs = sim.NewObserver(Metrics)
	}
}
