// Command cobra-sim runs a cipher configuration on the cycle-accurate
// COBRA simulator: it plays the role of the paper's VHDL testbench, loading
// the iRAM, driving the ready/go/busy/data-valid handshake, streaming
// plaintext blocks through the datapath, and reporting the Table 3 metrics
// for the run.
//
// Usage:
//
//	cobra-sim -alg rijndael -rounds 2 -key 000102...0f -blocks 64
//	cobra-sim -alg rc6 -rounds 20 -in plain.bin -out cipher.bin
//	cobra-sim -alg serpent -rounds 1 -verify -trace
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"cobra/internal/bench"
	"cobra/internal/bits"
	"cobra/internal/isa"
	"cobra/internal/program"
)

func main() {
	alg := flag.String("alg", "rijndael", "algorithm: rc6, rijndael, serpent")
	rounds := flag.Int("rounds", 0, "unroll depth (0 = full unroll)")
	keyHex := flag.String("key", strings.Repeat("00", 16), "key (hex)")
	blocks := flag.Int("blocks", 16, "number of synthetic test blocks when -in is not given")
	inFile := flag.String("in", "", "plaintext input file (multiple of 16 bytes)")
	outFile := flag.String("out", "", "ciphertext output file")
	decrypt := flag.Bool("decrypt", false, "run the decryption mapping instead of encryption")
	verify := flag.Bool("verify", true, "verify output against the reference cipher")
	trace := flag.Bool("trace", false, "print every executed instruction")
	flag.Parse()

	key, err := hex.DecodeString(*keyHex)
	if err != nil {
		fatal(fmt.Errorf("bad -key: %v", err))
	}
	if *rounds == 0 {
		*rounds = map[string]int{"rc6": 20, "rijndael": 10, "serpent": 32}[*alg]
	}
	cfg := bench.Config{Alg: *alg, Rounds: *rounds}
	build := bench.Build
	if *decrypt {
		build = bench.BuildDecrypt
	}
	p, err := build(cfg, key)
	if err != nil {
		fatal(err)
	}
	m, err := program.NewMachine(p)
	if err != nil {
		fatal(err)
	}
	if *trace {
		m.Trace = func(addr int, in isa.Instr) {
			fmt.Fprintf(os.Stderr, "%04x  %s\n", addr, in)
		}
	}
	if err := program.Load(m, p); err != nil {
		fatal(err)
	}

	var src []byte
	if *inFile != "" {
		src, err = os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
		if len(src)%16 != 0 {
			fatal(fmt.Errorf("input length %d is not a multiple of 16", len(src)))
		}
	} else {
		src = make([]byte, 16**blocks)
		for i := range src {
			src[i] = byte(i * 37)
		}
	}

	dst := make([]byte, len(src))
	stats, err := program.RunBytes(m, p, dst, src, program.Opts{})
	if err != nil {
		fatal(err)
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, dst, 0o644); err != nil {
			fatal(err)
		}
	}

	if *verify && !*decrypt {
		meas, err := bench.Measure(cfg, key, 4)
		if err != nil {
			fatal(err)
		}
		if !meas.Verified {
			fatal(fmt.Errorf("verification against the reference cipher FAILED"))
		}
		fmt.Println("verified against reference cipher: ok")
	}

	nBlocks := len(src) / 16
	cpb := float64(stats.Cycles) / float64(nBlocks)
	meas, err := bench.Measure(cfg, key, 1)
	if err != nil {
		fatal(err)
	}
	dir := "encrypt"
	if *decrypt {
		dir = "decrypt"
	}
	fmt.Printf("configuration:    %s-%d %s (%d rows, window %d, streaming=%v)\n",
		*alg, *rounds, dir, p.Geometry.Rows, p.Window, p.Streaming)
	fmt.Printf("microcode:        %d instructions\n", len(p.Instrs))
	fmt.Printf("blocks:           %d\n", nBlocks)
	fmt.Printf("datapath cycles:  %d (%.2f per block; %d stalled, %d NOP slots)\n",
		stats.Cycles, cpb, stats.Stalled, stats.Nops)
	fmt.Printf("clock (model):    %.3f MHz datapath, %.3f MHz iRAM\n",
		meas.FreqMHz, 2*meas.FreqMHz)
	fmt.Printf("throughput:       %.2f Mbps\n",
		meas.FreqMHz*float64(bench.PayloadBitsPerSuperblock(*alg))/cpb)
	if !quiet(dst) {
		fmt.Printf("first block out:  %x\n", dst[:16])
	}
	_ = bits.Block128{}
}

// quiet reports an empty ciphertext (defensive; never true in practice).
func quiet(b []byte) bool { return len(b) < 16 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobra-sim:", err)
	os.Exit(1)
}
