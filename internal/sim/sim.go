// Package sim ties the iRAM sequencer to the reconfigurable datapath and
// implements the COBRA execution model of §3.3–3.4:
//
//   - The iRAM operates independently from the datapath and reconfigures it
//     during operation. Loading and executing one instruction takes two iRAM
//     clock cycles; the datapath clock is derived as
//     F_DP = F_iRAM / (2 × windowsize), so exactly `window` instructions
//     execute per datapath cycle.
//   - Underfull instruction cycles are padded with NOPs by the programmer;
//     overfull cycles are completed by disabling the RCE outputs (stall
//     cycles) until reconfiguration finishes.
//   - The machine idles after power-up until the external system signals
//     that the iRAM has been loaded, then runs the microcode. Raising the
//     ready flag halts the machine until the external system raises go;
//     the data-valid flag marks cycles whose output the external system
//     must collect.
//
// The external system of the paper's VHDL testbench is modelled by the
// Machine's input queue, output slice and Go signal.
package sim

import (
	"fmt"

	"cobra/internal/bits"
	"cobra/internal/datapath"
	"cobra/internal/iram"
	"cobra/internal/isa"
	"cobra/internal/obs"
)

// Stats aggregates the performance counters the evaluation section reports:
// datapath cycles (Table 3's "Clock Cycles" currency), stall and advance
// breakdown, and the instruction-stream composition used for the
// overfull/underfull analysis of §3.4.
// The JSON tags are part of the repo's stable reporting surface: the same
// names appear in cobra-bench -json output, in core/farm report JSON and
// in the /metrics counter families, pinned by golden tests so the views
// cannot drift apart.
type Stats struct {
	// Cycles is the total number of datapath clock cycles.
	Cycles int `json:"cycles"`
	// Advanced counts cycles in which data moved through the array.
	Advanced int `json:"advanced"`
	// Stalled counts overfull/idle cycles (outputs disabled or input
	// starvation).
	Stalled int `json:"stalled"`
	// Instructions counts executed instruction slots, including NOPs.
	Instructions int `json:"instructions"`
	// Nops counts executed NOPs (the underfull padding of §3.4).
	Nops int `json:"nops"`
	// BlocksIn counts external blocks consumed.
	BlocksIn int `json:"blocks_in"`
	// BlocksOut counts valid output blocks collected.
	BlocksOut int `json:"blocks_out"`
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Cycles += other.Cycles
	s.Advanced += other.Advanced
	s.Stalled += other.Stalled
	s.Instructions += other.Instructions
	s.Nops += other.Nops
	s.BlocksIn += other.BlocksIn
	s.BlocksOut += other.BlocksOut
}

// Delta returns the counter movement from since to s, fieldwise s−since.
// Both snapshots must come from the same machine with no LoadProgram (which
// zeroes the counters) in between.
func (s Stats) Delta(since Stats) Stats {
	return Stats{
		Cycles:       s.Cycles - since.Cycles,
		Advanced:     s.Advanced - since.Advanced,
		Stalled:      s.Stalled - since.Stalled,
		Instructions: s.Instructions - since.Instructions,
		Nops:         s.Nops - since.Nops,
		BlocksIn:     s.BlocksIn - since.BlocksIn,
		BlocksOut:    s.BlocksOut - since.BlocksOut,
	}
}

// StopReason explains why Run returned.
type StopReason int

const (
	// StopHalted: the program executed OpHalt.
	StopHalted StopReason = iota
	// StopWaitGo: the microcode raised the ready flag and the go signal is
	// inactive; the machine idles at the current program counter.
	StopWaitGo
	// StopOutputs: the requested number of output blocks was collected.
	StopOutputs
	// StopInputs: the requested number of input blocks was consumed.
	StopInputs
	// StopCycleLimit: the cycle budget was exhausted.
	StopCycleLimit
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopHalted:
		return "halted"
	case StopWaitGo:
		return "waiting for go"
	case StopOutputs:
		return "outputs collected"
	case StopInputs:
		return "inputs consumed"
	case StopCycleLimit:
		return "cycle limit"
	}
	return "?"
}

// Limits bounds a Run call.
type Limits struct {
	// MaxCycles stops the run after this many datapath cycles (0: a large
	// default guard against runaway microcode).
	MaxCycles int
	// StopAfterOutputs returns once this many total output blocks have
	// been collected (0: don't stop on outputs).
	StopAfterOutputs int
	// StopAfterInputs returns once this many input blocks have been
	// consumed during this call (0: don't stop on inputs). The external
	// system uses it to regain control after feeding key material in the
	// §3.4 key-scheduling handshake.
	StopAfterInputs int
}

// DefaultMaxCycles guards against microcode that never halts or idles.
const DefaultMaxCycles = 1 << 22

// Machine is one COBRA device plus its external system interface.
//
// A Machine is not safe for concurrent use: it is one piece of silicon
// with a single sequencer, datapath and input/output bus, and every method
// mutates that state. To parallelize a non-feedback workload, replicate
// machines — one per goroutine — and shard the data between them, which is
// what internal/farm does.
type Machine struct {
	Array *datapath.Array
	Seq   *iram.Sequencer

	// Window is the instruction window size w (§3.4): instructions per
	// datapath cycle, F_DP = F_iRAM/(2w).
	Window int

	// Go is the external system's go signal.
	Go bool

	// Trace, when non-nil, receives every executed instruction with its
	// address (debug aid; the cobra-sim tool wires this to -trace).
	Trace func(addr int, in isa.Instr)

	// TickHook, when non-nil, runs immediately before every datapath cycle,
	// after the window's instructions have executed — i.e. with the array
	// configuration exactly as the cycle will see it. internal/fastpath uses
	// it to record the resolved per-cycle datapath state for trace
	// compilation; the hook must not mutate the machine.
	TickHook func()

	// Obs, when non-nil, receives the machine-level counter movement of
	// every Run call (set it once, before running; see Observer).
	Obs *Observer

	stats   Stats
	inQ     []bits.Block128
	outputs []bits.Block128
	slot    int  // instructions executed within the current window
	dirty   bool // any Run since the last LoadProgram

	// resyncs and cfgInstrs are cumulative machine-lifetime counters (they
	// survive LoadProgram, unlike stats): READY-flag idle points reached
	// and configuration-class instructions executed.
	resyncs   int
	cfgInstrs int
}

// Resyncs returns the cumulative count of READY-flag idle points (§3.4
// dual-clock resynchronizations) the machine has reached.
func (m *Machine) Resyncs() int { return m.resyncs }

// ConfigInstrs returns the cumulative count of configuration-class
// instructions executed (CFGE, LUTW, SHUF, INMUX, WHITE, ERAMW, CAPT) —
// the instruction-level distributed reconfiguration traffic of §3.3.
func (m *Machine) ConfigInstrs() int { return m.cfgInstrs }

// New builds a machine around a fresh array of the given geometry.
func New(geo datapath.Geometry, window int) (*Machine, error) {
	if window < 1 {
		return nil, fmt.Errorf("sim: instruction window must be >= 1, got %d", window)
	}
	a, err := datapath.New(geo)
	if err != nil {
		return nil, err
	}
	return &Machine{Array: a, Seq: new(iram.Sequencer), Window: window}, nil
}

// LoadProgram installs microcode and resets the machine to power-up state
// (eRAM contents survive, as in the hardware).
func (m *Machine) LoadProgram(words []isa.Word) error {
	if err := m.Seq.Load(words); err != nil {
		return err
	}
	m.Array.Reset()
	m.stats = Stats{}
	m.inQ = nil
	m.outputs = nil
	m.slot = 0
	m.dirty = false
	return nil
}

// Dirty reports whether the machine has executed anything since the last
// program load settled (program.Load marks the post-setup idle point clean
// via MarkClean). Streaming (non-feedback) programs never return to the
// idle point, so a dirty machine may hold in-flight pipeline contents;
// callers that need a deterministic pipeline reload first, and
// program.Run keeps a dirty machine on the interpreter.
func (m *Machine) Dirty() bool { return m.dirty }

// MarkClean records that the machine sits at a well-defined idle point —
// the load sequence's setup phase has settled and no bulk encryption has
// run. program.Load calls it so that Dirty distinguishes "has encrypted
// since load" from "has run at all".
func (m *Machine) MarkClean() { m.dirty = false }

// PushInput queues external blocks for the input bus.
func (m *Machine) PushInput(blocks ...bits.Block128) {
	m.inQ = append(m.inQ, blocks...)
}

// PendingInputs returns the number of queued, unconsumed input blocks.
func (m *Machine) PendingInputs() int { return len(m.inQ) }

// Outputs returns the blocks collected so far (valid-output cycles).
func (m *Machine) Outputs() []bits.Block128 { return m.outputs }

// ClearOutputs discards collected outputs (between measurement phases).
func (m *Machine) ClearOutputs() { m.outputs = nil }

// Stats returns the accumulated performance counters.
func (m *Machine) Stats() Stats { return m.stats }

// ResetStats zeroes the counters (e.g. after the key-schedule phase so
// Table 3 measures bulk encryption only, as §3.4 prescribes).
func (m *Machine) ResetStats() { m.stats = Stats{} }

// Observer is a set of pre-bound obs counters the machine flushes once
// per Run call — never per tick, so instrumentation costs a handful of
// atomic adds per run, not per cycle. Build one with NewObserver; all
// fields must be non-nil.
type Observer struct {
	Runs         *obs.Counter // Run invocations
	Ticks        *obs.Counter // datapath clock cycles (windows completed)
	Advanced     *obs.Counter // cycles with data movement
	Stalled      *obs.Counter // overfull/idle cycles
	Instructions *obs.Counter // executed instruction slots, incl. NOPs
	Nops         *obs.Counter // §3.4 underfull padding
	BlocksIn     *obs.Counter // external blocks consumed
	BlocksOut    *obs.Counter // valid output blocks collected
	Resyncs      *obs.Counter // READY-flag idle points (dual-clock resync)
	ConfigInstrs *obs.Counter // configuration-class instructions
}

// NewObserver registers the machine-level counter families on r and
// returns the bound observer. The families are shared get-or-create, so
// several machines bound to one registry aggregate into one time series.
func NewObserver(r *obs.Registry) *Observer {
	return &Observer{
		Runs:         r.Counter("cobra_sim_runs_total", "sim.Machine.Run invocations"),
		Ticks:        r.Counter("cobra_sim_ticks_total", "datapath clock cycles (instruction windows completed)"),
		Advanced:     r.Counter("cobra_sim_advanced_total", "cycles in which data moved through the array"),
		Stalled:      r.Counter("cobra_sim_stalled_total", "overfull/idle cycles"),
		Instructions: r.Counter("cobra_sim_instructions_total", "executed instruction slots, including NOPs"),
		Nops:         r.Counter("cobra_sim_nops_total", "executed NOP padding instructions"),
		BlocksIn:     r.Counter("cobra_sim_blocks_in_total", "external blocks consumed"),
		BlocksOut:    r.Counter("cobra_sim_blocks_out_total", "valid output blocks collected"),
		Resyncs:      r.Counter("cobra_sim_ready_resyncs_total", "READY-flag idle points (dual-clock resynchronizations)"),
		ConfigInstrs: r.Counter("cobra_sim_config_instrs_total", "configuration-class instructions executed"),
	}
}

// record flushes one Run call's counter movement.
func (o *Observer) record(d Stats, resyncs, cfgInstrs int) {
	o.Runs.Inc()
	o.Ticks.Add(int64(d.Cycles))
	o.Advanced.Add(int64(d.Advanced))
	o.Stalled.Add(int64(d.Stalled))
	o.Instructions.Add(int64(d.Instructions))
	o.Nops.Add(int64(d.Nops))
	o.BlocksIn.Add(int64(d.BlocksIn))
	o.BlocksOut.Add(int64(d.BlocksOut))
	o.Resyncs.Add(int64(resyncs))
	o.ConfigInstrs.Add(int64(cfgInstrs))
}

// Run executes microcode until a stop condition is reached. It may be
// called repeatedly; execution resumes where it left off (idle points,
// go-waits). When an Observer is bound, the call's counter movement is
// flushed to it on return (including error returns).
func (m *Machine) Run(lim Limits) (StopReason, error) {
	if m.Obs == nil {
		return m.run(lim)
	}
	s0, r0, c0 := m.stats, m.resyncs, m.cfgInstrs
	reason, err := m.run(lim)
	m.Obs.record(m.stats.Delta(s0), m.resyncs-r0, m.cfgInstrs-c0)
	return reason, err
}

// run is the uninstrumented execution loop.
func (m *Machine) run(lim Limits) (StopReason, error) {
	maxCycles := lim.MaxCycles
	if maxCycles <= 0 {
		maxCycles = DefaultMaxCycles
	}
	cycleBudget := maxCycles
	m.dirty = true
	startIn := m.stats.BlocksIn
	for {
		in, err := m.Seq.Fetch()
		if err != nil {
			return 0, err
		}
		if m.Trace != nil {
			m.Trace(m.Seq.PC()-1, in)
		}
		m.stats.Instructions++
		halt, waitGo, readySet, err := m.execute(in)
		if err != nil {
			return 0, fmt.Errorf("sim: at %#x: %s: %w", m.Seq.PC()-1, in, err)
		}
		if halt {
			return StopHalted, nil
		}
		if readySet {
			m.resyncs++
		}
		if waitGo {
			// §3.4: halt upon detection of the ready flag; wait for go.
			m.slot = 0
			return StopWaitGo, nil
		}
		if readySet {
			// The idle point resynchronizes the dual clocks (§3.4): the
			// instruction window restarts whether or not the machine had to
			// wait for go, so window alignment is identical for every
			// block of a batch.
			m.slot = 0
			continue
		}

		m.slot++
		if m.slot < m.Window {
			continue
		}
		m.slot = 0

		// End of instruction window: one datapath clock cycle.
		if m.TickHook != nil {
			m.TickHook()
		}
		res := m.tick()
		m.stats.Cycles++
		cycleBudget--
		if res.Advanced {
			m.stats.Advanced++
		} else {
			m.stats.Stalled++
		}
		if lim.StopAfterOutputs > 0 && len(m.outputs) >= lim.StopAfterOutputs {
			// Counted against the outputs collected since ClearOutputs, so
			// repeated runs on one machine measure independently.
			return StopOutputs, nil
		}
		if lim.StopAfterInputs > 0 && m.stats.BlocksIn-startIn >= lim.StopAfterInputs {
			return StopInputs, nil
		}
		if cycleBudget <= 0 {
			return StopCycleLimit, nil
		}
	}
}

// tick advances the datapath one cycle, wiring the input queue and output
// collection to the array.
func (m *Machine) tick() datapath.TickResult {
	var ti datapath.TickInput
	if len(m.inQ) > 0 {
		ti.External = m.inQ[0]
		ti.HaveExternal = true
	}
	res := m.Array.Tick(ti)
	if res.ConsumedExternal {
		m.inQ = m.inQ[1:]
		m.stats.BlocksIn++
	}
	if res.Advanced && m.Seq.Flag(isa.FlagDValid) {
		m.outputs = append(m.outputs, res.Output)
		m.stats.BlocksOut++
	}
	return res
}

// execute dispatches one instruction to the datapath or sequencer.
// readySet reports that the ready flag was raised (the idle point), which
// resynchronizes the instruction window.
func (m *Machine) execute(in isa.Instr) (halt, waitGo, readySet bool, err error) {
	switch in.Op {
	case isa.OpNop:
		m.stats.Nops++
	case isa.OpCfgElem:
		m.cfgInstrs++
		err = m.Array.ApplyElem(in.Slice, in.Elem, in.Data)
	case isa.OpEnOut:
		err = m.Array.SetOutEnable(in.Slice, true)
	case isa.OpDisOut:
		err = m.Array.SetOutEnable(in.Slice, false)
	case isa.OpLoadLUT:
		m.cfgInstrs++
		err = m.Array.LoadLUT(in.Slice, in.LUT, in.Data)
	case isa.OpCfgShuf:
		m.cfgInstrs++
		err = m.Array.SetShuffler(int(in.Slice.Row), isa.DecodeShuf(in.Data))
	case isa.OpCfgInMux:
		m.cfgInstrs++
		m.Array.SetInMux(isa.DecodeInMux(in.Data))
	case isa.OpCfgWhite:
		m.cfgInstrs++
		m.Array.SetWhitening(isa.DecodeWhite(in.Data))
	case isa.OpERAMWrite:
		m.cfgInstrs++
		cfg := isa.DecodeERAMWrite(in.Data)
		m.Array.WriteERAM(int(in.Slice.Col), int(cfg.Bank), int(cfg.Addr), cfg.Value)
	case isa.OpCfgCapture:
		m.cfgInstrs++
		m.Array.SetCapture(int(in.Slice.Col), isa.DecodeCapture(in.Data))
	case isa.OpCtlFlag:
		cfg := isa.DecodeFlag(in.Data)
		m.Seq.SetFlags(cfg)
		if cfg.Set&isa.FlagReady != 0 {
			return false, !m.Go, true, nil
		}
	case isa.OpJmp:
		err = m.Seq.Jump(int(in.Data & 0xfff))
	case isa.OpHalt:
		return true, false, false, nil
	default:
		err = fmt.Errorf("sim: unimplemented opcode %v", in.Op)
	}
	return false, false, false, err
}

// DatapathMHz converts an iRAM clock frequency to the datapath frequency
// under the dual-clocking scheme: F_DP = F_iRAM / (2 × window) (§3.4).
func DatapathMHz(iramMHz float64, window int) float64 {
	return iramMHz / (2 * float64(window))
}
