package cipher

import "cobra/internal/bits"

// TEA and XTEA: 64-bit block ciphers from the paper's 41-cipher study,
// built entirely from additions, shifts and XORs — the archetype of the
// "Boolean + modular addition + fixed shift" operation profile that
// dominates Table 2.

const teaDelta = 0x9e3779b9

// TEA implements the Tiny Encryption Algorithm (64 Feistel half-rounds).
type TEA struct {
	k [4]uint32
}

// NewTEA derives the cipher from a 16-byte key.
func NewTEA(key []byte) (*TEA, error) {
	if len(key) != 16 {
		return nil, KeySizeError{"tea", len(key)}
	}
	var c TEA
	for i := range c.k {
		c.k[i] = bits.Load32BE(key[4*i:])
	}
	return &c, nil
}

// BlockSize returns 8.
func (c *TEA) BlockSize() int { return 8 }

// Encrypt encrypts one 8-byte block.
func (c *TEA) Encrypt(dst, src []byte) {
	v0, v1 := bits.Load32BE(src[0:]), bits.Load32BE(src[4:])
	var sum uint32
	for i := 0; i < 32; i++ {
		sum += teaDelta
		v0 += (v1<<4 + c.k[0]) ^ (v1 + sum) ^ (v1>>5 + c.k[1])
		v1 += (v0<<4 + c.k[2]) ^ (v0 + sum) ^ (v0>>5 + c.k[3])
	}
	bits.Store32BE(dst[0:], v0)
	bits.Store32BE(dst[4:], v1)
}

// Decrypt decrypts one 8-byte block.
func (c *TEA) Decrypt(dst, src []byte) {
	v0, v1 := bits.Load32BE(src[0:]), bits.Load32BE(src[4:])
	sum := uint32(0xc6ef3720) // delta * 32 mod 2^32
	for i := 0; i < 32; i++ {
		v1 -= (v0<<4 + c.k[2]) ^ (v0 + sum) ^ (v0>>5 + c.k[3])
		v0 -= (v1<<4 + c.k[0]) ^ (v1 + sum) ^ (v1>>5 + c.k[1])
		sum -= teaDelta
	}
	bits.Store32BE(dst[0:], v0)
	bits.Store32BE(dst[4:], v1)
}

// XTEA implements the extended TEA variant.
type XTEA struct {
	k [4]uint32
}

// NewXTEA derives the cipher from a 16-byte key.
func NewXTEA(key []byte) (*XTEA, error) {
	if len(key) != 16 {
		return nil, KeySizeError{"xtea", len(key)}
	}
	var c XTEA
	for i := range c.k {
		c.k[i] = bits.Load32BE(key[4*i:])
	}
	return &c, nil
}

// BlockSize returns 8.
func (c *XTEA) BlockSize() int { return 8 }

// Encrypt encrypts one 8-byte block.
func (c *XTEA) Encrypt(dst, src []byte) {
	v0, v1 := bits.Load32BE(src[0:]), bits.Load32BE(src[4:])
	var sum uint32
	for i := 0; i < 32; i++ {
		v0 += ((v1<<4 ^ v1>>5) + v1) ^ (sum + c.k[sum&3])
		sum += teaDelta
		v1 += ((v0<<4 ^ v0>>5) + v0) ^ (sum + c.k[sum>>11&3])
	}
	bits.Store32BE(dst[0:], v0)
	bits.Store32BE(dst[4:], v1)
}

// Decrypt decrypts one 8-byte block.
func (c *XTEA) Decrypt(dst, src []byte) {
	v0, v1 := bits.Load32BE(src[0:]), bits.Load32BE(src[4:])
	sum := uint32(0xc6ef3720) // delta * 32 mod 2^32
	for i := 0; i < 32; i++ {
		v1 -= ((v0<<4 ^ v0>>5) + v0) ^ (sum + c.k[sum>>11&3])
		sum -= teaDelta
		v0 -= ((v1<<4 ^ v1>>5) + v1) ^ (sum + c.k[sum&3])
	}
	bits.Store32BE(dst[0:], v0)
	bits.Store32BE(dst[4:], v1)
}
