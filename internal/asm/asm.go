// Package asm implements the COBRA assembly language (§4: "Key scheduling
// and encryption were either coded in COBRA assembly language and assembled
// into microcode or written directly as microcode").
//
// The language is line oriented; ';' and '#' start comments, labels end in
// ':'. One statement assembles to one 80-bit instruction word. The
// disassembler emits canonical assembly that re-assembles to identical
// microcode, so assemble∘disassemble is the identity on packed programs.
//
// Statement forms (slices are all, rN, cN or rN.cN; numbers are decimal or
// 0x-prefixed hex):
//
//	NOP
//	HALT
//	JMP   <label|addr>
//	ENOUT <slice>             DISOUT <slice>
//	FLAG  [SET f,f,...] [CLR f,f,...]
//	CFGE  <slice> INSEL INA|INB|INC|IND|PA|PB|PC|PD
//	CFGE  <slice> E1|E2|E3 BYP | SHL|SHR|ROTL|ROTR IMM <n> | SHL|SHR|ROTL|ROTR <blk>
//	CFGE  <slice> A1|A2 BYP | XOR|AND|OR <src> [SHL <n>|ROTLBY <n>]
//	CFGE  <slice> B BYP | ADD|SUB W8|W16|W32 <src>
//	CFGE  <slice> C BYP | S8 | S4 PAGE <n> | S8TO32 BYTE <n>
//	CFGE  <slice> D BYP | SQR | MUL16|MUL32 <src>
//	CFGE  <slice> F BYP | LANES|MDS <k0> <k1> <k2> <k3>
//	CFGE  <slice> REG ON|OFF
//	CFGE  <slice> ER BANK <b> ADDR <a>
//	LUTLD <slice> S8|S4 BANK <b> GROUP <g> <data32>
//	SHUF  <idx> LO|HI <p0> ... <p7>
//	INMUX EXT | FB | ERAM BANK <b> ADDR <a>
//	WHITE cN OFF | XOR|ADD|XORIN|ADDIN <key32>
//	ERAMW cN BANK <b> ADDR <a> <val32>
//	CAPCFG cN OFF | ON BANK <b> ADDR <a>
//
// where <src> is INA, INB, INC, IND, INER, or IMM <val32>, and <blk> is a
// data-dependent amount source (INB, INC, IND or INER).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"cobra/internal/isa"
)

// Error is a source-located assembly error.
type Error struct {
	Line int
	Msg  string
}

// Error satisfies the error interface.
func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble translates assembly source into packed microcode.
func Assemble(src string) ([]isa.Word, error) {
	prog, err := AssembleInstrs(src)
	if err != nil {
		return nil, err
	}
	words := make([]isa.Word, len(prog))
	for i, in := range prog {
		words[i] = in.Pack()
	}
	return words, nil
}

// AssembleInstrs translates assembly source into decoded instructions.
func AssembleInstrs(src string) ([]isa.Instr, error) {
	lines := strings.Split(src, "\n")

	// Pass 1: statement extraction and label resolution.
	type stmt struct {
		line   int
		fields []string
	}
	var stmts []stmt
	labels := make(map[string]int)
	for i, raw := range lines {
		line := raw
		if j := strings.IndexAny(line, ";#"); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		for {
			// Leading labels, possibly several on one line.
			j := strings.Index(line, ":")
			if j < 0 {
				break
			}
			name := strings.TrimSpace(line[:j])
			if name == "" || strings.ContainsAny(name, " \t") {
				break
			}
			if _, dup := labels[name]; dup {
				return nil, &Error{i + 1, fmt.Sprintf("duplicate label %q", name)}
			}
			labels[name] = len(stmts)
			line = strings.TrimSpace(line[j+1:])
		}
		if line == "" {
			continue
		}
		stmts = append(stmts, stmt{i + 1, strings.Fields(line)})
	}

	// Pass 2: encode.
	prog := make([]isa.Instr, 0, len(stmts))
	for _, s := range stmts {
		in, err := encodeStmt(s.fields, labels)
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		prog = append(prog, in)
	}
	if len(prog) == 0 {
		return nil, &Error{0, "no instructions"}
	}
	return prog, nil
}

// parseNum accepts decimal or 0x hex.
func parseNum(tok string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(tok), "+"), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", tok)
	}
	return v, nil
}

// parseSlice accepts all, rN, cN, rN.cN.
func parseSlice(tok string) (isa.Slice, error) {
	t := strings.ToLower(tok)
	if t == "all" {
		return isa.SliceAll(), nil
	}
	if dot := strings.Index(t, "."); dot >= 0 {
		r, c := t[:dot], t[dot+1:]
		if !strings.HasPrefix(r, "r") || !strings.HasPrefix(c, "c") {
			return isa.Slice{}, fmt.Errorf("bad slice %q", tok)
		}
		rn, err1 := parseNum(r[1:])
		cn, err2 := parseNum(c[1:])
		if err1 != nil || err2 != nil || rn > 255 || cn > 3 {
			return isa.Slice{}, fmt.Errorf("bad slice %q", tok)
		}
		return isa.SliceAt(int(rn), int(cn)), nil
	}
	switch {
	case strings.HasPrefix(t, "r"):
		n, err := parseNum(t[1:])
		if err != nil || n > 255 {
			return isa.Slice{}, fmt.Errorf("bad slice %q", tok)
		}
		return isa.SliceRow(int(n)), nil
	case strings.HasPrefix(t, "c"):
		n, err := parseNum(t[1:])
		if err != nil || n > 3 {
			return isa.Slice{}, fmt.Errorf("bad slice %q", tok)
		}
		return isa.SliceCol(int(n)), nil
	}
	return isa.Slice{}, fmt.Errorf("bad slice %q", tok)
}

// parseCol accepts a column slice cN and returns N.
func parseCol(tok string) (uint8, error) {
	s, err := parseSlice(tok)
	if err != nil {
		return 0, err
	}
	if s.Scope != isa.ScopeCol {
		return 0, fmt.Errorf("expected column slice cN, got %q", tok)
	}
	return s.Col, nil
}

// operand parses <src>: a block name or IMM <val>; it returns the source,
// the immediate, and the number of tokens consumed.
func operand(toks []string) (isa.Src, uint32, int, error) {
	if len(toks) == 0 {
		return 0, 0, 0, fmt.Errorf("missing operand")
	}
	up := strings.ToUpper(toks[0])
	if up == "IMM" {
		if len(toks) < 2 {
			return 0, 0, 0, fmt.Errorf("IMM requires a value")
		}
		v, err := parseNum(toks[1])
		if err != nil || v > 0xffffffff {
			return 0, 0, 0, fmt.Errorf("bad immediate %q", toks[1])
		}
		return isa.SrcImm, uint32(v), 2, nil
	}
	src, ok := isa.SrcByName(up)
	if !ok || src == isa.SrcImm {
		return 0, 0, 0, fmt.Errorf("bad operand source %q", toks[0])
	}
	return src, 0, 1, nil
}

var flagNames = map[string]uint16{
	"READY": isa.FlagReady, "BUSY": isa.FlagBusy, "DVALID": isa.FlagDValid,
	"KEYREQ": isa.FlagKeyReq, "GEN0": isa.FlagGen0, "GEN1": isa.FlagGen1,
	"GEN2": isa.FlagGen2, "GEN3": isa.FlagGen3,
}

// flagName returns the canonical name for a single flag bit.
func flagName(bit uint16) string {
	for n, b := range flagNames {
		if b == bit {
			return n
		}
	}
	return fmt.Sprintf("0x%x", bit)
}

func parseFlagList(tok string) (uint16, error) {
	var mask uint16
	for _, f := range strings.Split(tok, ",") {
		if bit, ok := flagNames[strings.ToUpper(f)]; ok {
			mask |= bit
			continue
		}
		// Numeric masks cover the flag bits without surface names (the
		// disassembler emits them as hex), keeping the round trip total.
		v, err := parseNum(f)
		if err != nil || v > 0xffff {
			return 0, fmt.Errorf("unknown flag %q", f)
		}
		mask |= uint16(v)
	}
	return mask, nil
}

func encodeStmt(f []string, labels map[string]int) (isa.Instr, error) {
	op := strings.ToUpper(f[0])
	args := f[1:]
	switch op {
	case "NOP":
		return isa.Instr{Op: isa.OpNop}, nil
	case "HALT":
		return isa.Instr{Op: isa.OpHalt}, nil
	case "JMP":
		if len(args) != 1 {
			return isa.Instr{}, fmt.Errorf("JMP requires a target")
		}
		if addr, ok := labels[args[0]]; ok {
			return isa.Instr{Op: isa.OpJmp, Data: uint64(addr)}, nil
		}
		v, err := parseNum(args[0])
		if err != nil || v >= isa.IRAMWords {
			return isa.Instr{}, fmt.Errorf("unknown label or bad address %q", args[0])
		}
		return isa.Instr{Op: isa.OpJmp, Data: v}, nil
	case "ENOUT", "DISOUT":
		if len(args) != 1 {
			return isa.Instr{}, fmt.Errorf("%s requires a slice", op)
		}
		s, err := parseSlice(args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		o := isa.OpEnOut
		if op == "DISOUT" {
			o = isa.OpDisOut
		}
		return isa.Instr{Op: o, Slice: s}, nil
	case "FLAG":
		var cfg isa.FlagCfg
		i := 0
		for i < len(args) {
			switch strings.ToUpper(args[i]) {
			case "SET":
				if i+1 >= len(args) {
					return isa.Instr{}, fmt.Errorf("SET requires flags")
				}
				m, err := parseFlagList(args[i+1])
				if err != nil {
					return isa.Instr{}, err
				}
				cfg.Set |= m
				i += 2
			case "CLR":
				if i+1 >= len(args) {
					return isa.Instr{}, fmt.Errorf("CLR requires flags")
				}
				m, err := parseFlagList(args[i+1])
				if err != nil {
					return isa.Instr{}, err
				}
				cfg.Clear |= m
				i += 2
			default:
				return isa.Instr{}, fmt.Errorf("FLAG expects SET/CLR, got %q", args[i])
			}
		}
		return isa.Instr{Op: isa.OpCtlFlag, Data: cfg.Encode()}, nil
	case "CFGE":
		return encodeCfgE(args)
	case "LUTLD":
		return encodeLutLd(args)
	case "SHUF":
		return encodeShuf(args)
	case "INMUX":
		return encodeInMux(args)
	case "WHITE":
		return encodeWhite(args)
	case "ERAMW":
		return encodeERAMW(args)
	case "CAPCFG":
		return encodeCapCfg(args)
	}
	return isa.Instr{}, fmt.Errorf("unknown mnemonic %q", f[0])
}

func encodeCfgE(args []string) (isa.Instr, error) {
	if len(args) < 2 {
		return isa.Instr{}, fmt.Errorf("CFGE requires a slice and an element")
	}
	slice, err := parseSlice(args[0])
	if err != nil {
		return isa.Instr{}, err
	}
	elem, ok := isa.ElemByName(strings.ToUpper(args[1]))
	if !ok {
		return isa.Instr{}, fmt.Errorf("unknown element %q", args[1])
	}
	rest := args[2:]
	in := isa.Instr{Op: isa.OpCfgElem, Slice: slice, Elem: elem}

	// RAW escape hatch for any element.
	if len(rest) == 2 && strings.ToUpper(rest[0]) == "RAW" {
		v, err := parseNum(rest[1])
		if err != nil || v >= 1<<50 {
			return isa.Instr{}, fmt.Errorf("bad RAW payload %q", rest[1])
		}
		in.Data = v
		return in, nil
	}

	switch elem {
	case isa.ElemInsel:
		if len(rest) != 1 {
			return isa.Instr{}, fmt.Errorf("INSEL requires a block name")
		}
		name := strings.ToUpper(rest[0])
		found := false
		for i, n := range isa.InselNames {
			if n == name {
				in.Data = isa.InselCfg{Source: uint8(i)}.Encode()
				found = true
				break
			}
		}
		if !found {
			return isa.Instr{}, fmt.Errorf("bad INSEL source %q", rest[0])
		}
	case isa.ElemE1, isa.ElemE2, isa.ElemE3:
		cfg, err := parseECfg(rest)
		if err != nil {
			return isa.Instr{}, err
		}
		in.Data = cfg.Encode()
	case isa.ElemA1, isa.ElemA2:
		cfg, err := parseACfg(rest)
		if err != nil {
			return isa.Instr{}, err
		}
		in.Data = cfg.Encode()
	case isa.ElemB:
		cfg, err := parseBCfg(rest)
		if err != nil {
			return isa.Instr{}, err
		}
		in.Data = cfg.Encode()
	case isa.ElemC:
		cfg, err := parseCCfg(rest)
		if err != nil {
			return isa.Instr{}, err
		}
		in.Data = cfg.Encode()
	case isa.ElemD:
		cfg, err := parseDCfg(rest)
		if err != nil {
			return isa.Instr{}, err
		}
		in.Data = cfg.Encode()
	case isa.ElemF:
		cfg, err := parseFCfg(rest)
		if err != nil {
			return isa.Instr{}, err
		}
		in.Data = cfg.Encode()
	case isa.ElemReg, isa.ElemOut:
		if len(rest) != 1 {
			return isa.Instr{}, fmt.Errorf("%s requires ON or OFF", elem)
		}
		switch strings.ToUpper(rest[0]) {
		case "ON":
			in.Data = 1
		case "OFF":
			in.Data = 0
		default:
			return isa.Instr{}, fmt.Errorf("%s requires ON or OFF", elem)
		}
	case isa.ElemER:
		if len(rest) != 4 || strings.ToUpper(rest[0]) != "BANK" || strings.ToUpper(rest[2]) != "ADDR" {
			return isa.Instr{}, fmt.Errorf("ER requires BANK <b> ADDR <a>")
		}
		b, err1 := parseNum(rest[1])
		a, err2 := parseNum(rest[3])
		if err1 != nil || err2 != nil || b > 3 || a > 255 {
			return isa.Instr{}, fmt.Errorf("bad ER bank/addr")
		}
		in.Data = isa.ERCfg{Bank: uint8(b), Addr: uint8(a)}.Encode()
	default:
		return isa.Instr{}, fmt.Errorf("element %v is not configurable", elem)
	}
	return in, nil
}

func parseECfg(rest []string) (isa.ECfg, error) {
	if len(rest) == 1 && strings.ToUpper(rest[0]) == "BYP" {
		return isa.ECfg{}, nil
	}
	if len(rest) < 2 {
		return isa.ECfg{}, fmt.Errorf("E element requires a mode and an amount")
	}
	modes := map[string]isa.EMode{"SHL": isa.EShl, "SHR": isa.EShr, "ROTL": isa.ERotl, "ROTR": isa.ERotl}
	name := strings.ToUpper(rest[0])
	m, ok := modes[name]
	if !ok {
		return isa.ECfg{}, fmt.Errorf("bad E mode %q", rest[0])
	}
	neg := name == "ROTR" // rotate right = rotate left by the negated amount
	if strings.ToUpper(rest[1]) == "IMM" {
		if len(rest) != 3 {
			return isa.ECfg{}, fmt.Errorf("E IMM requires an amount")
		}
		v, err := parseNum(rest[2])
		if err != nil || v > 31 {
			return isa.ECfg{}, fmt.Errorf("bad shift amount %q", rest[2])
		}
		return isa.ECfg{Mode: m, AmtSrc: isa.SrcImm, Amt: uint8(v), Neg: neg}, nil
	}
	src, ok := isa.SrcByName(strings.ToUpper(rest[1]))
	if !ok || src == isa.SrcImm {
		return isa.ECfg{}, fmt.Errorf("bad E amount source %q", rest[1])
	}
	if len(rest) != 2 {
		return isa.ECfg{}, fmt.Errorf("trailing tokens after E amount source")
	}
	return isa.ECfg{Mode: m, AmtSrc: src, Neg: neg}, nil
}

func parseACfg(rest []string) (isa.ACfg, error) {
	if len(rest) == 1 && strings.ToUpper(rest[0]) == "BYP" {
		return isa.ACfg{}, nil
	}
	if len(rest) < 2 {
		return isa.ACfg{}, fmt.Errorf("A element requires an op and an operand")
	}
	ops := map[string]isa.AOp{"XOR": isa.AXor, "AND": isa.AAnd, "OR": isa.AOr}
	o, ok := ops[strings.ToUpper(rest[0])]
	if !ok {
		return isa.ACfg{}, fmt.Errorf("bad A op %q", rest[0])
	}
	src, imm, n, err := operand(rest[1:])
	if err != nil {
		return isa.ACfg{}, err
	}
	cfg := isa.ACfg{Op: o, Operand: src, Imm: imm}
	rest = rest[1+n:]
	if len(rest) == 0 {
		return cfg, nil
	}
	if len(rest) != 2 {
		return isa.ACfg{}, fmt.Errorf("bad A pre-shift clause %v", rest)
	}
	amt, err := parseNum(rest[1])
	if err != nil || amt > 31 {
		return isa.ACfg{}, fmt.Errorf("bad pre-shift amount %q", rest[1])
	}
	switch strings.ToUpper(rest[0]) {
	case "SHL":
		cfg.PreShift = uint8(amt)
	case "ROTLBY":
		cfg.PreShift, cfg.PreShiftRot = uint8(amt), true
	default:
		return isa.ACfg{}, fmt.Errorf("bad A pre-shift %q", rest[0])
	}
	return cfg, nil
}

func parseBCfg(rest []string) (isa.BCfg, error) {
	if len(rest) == 1 && strings.ToUpper(rest[0]) == "BYP" {
		return isa.BCfg{}, nil
	}
	if len(rest) < 3 {
		return isa.BCfg{}, fmt.Errorf("B element requires mode, width and operand")
	}
	modes := map[string]isa.BMode{"ADD": isa.BAdd, "SUB": isa.BSub}
	m, ok := modes[strings.ToUpper(rest[0])]
	if !ok {
		return isa.BCfg{}, fmt.Errorf("bad B mode %q", rest[0])
	}
	widths := map[string]uint8{"W8": 0, "W16": 1, "W32": 2}
	w, ok := widths[strings.ToUpper(rest[1])]
	if !ok {
		return isa.BCfg{}, fmt.Errorf("bad B width %q", rest[1])
	}
	src, imm, n, err := operand(rest[2:])
	if err != nil {
		return isa.BCfg{}, err
	}
	if len(rest) != 2+n {
		return isa.BCfg{}, fmt.Errorf("trailing tokens after B operand")
	}
	return isa.BCfg{Mode: m, Width: w, Operand: src, Imm: imm}, nil
}

func parseCCfg(rest []string) (isa.CCfg, error) {
	if len(rest) == 0 {
		return isa.CCfg{}, fmt.Errorf("C element requires a mode")
	}
	switch strings.ToUpper(rest[0]) {
	case "BYP":
		return isa.CCfg{}, nil
	case "S8":
		if len(rest) != 1 {
			return isa.CCfg{}, fmt.Errorf("S8 takes no arguments")
		}
		return isa.CCfg{Mode: isa.CS8x8}, nil
	case "S4":
		if len(rest) != 3 || strings.ToUpper(rest[1]) != "PAGE" {
			return isa.CCfg{}, fmt.Errorf("S4 requires PAGE <n>")
		}
		p, err := parseNum(rest[2])
		if err != nil || p > 7 {
			return isa.CCfg{}, fmt.Errorf("bad page %q", rest[2])
		}
		return isa.CCfg{Mode: isa.CS4x4, Page: uint8(p)}, nil
	case "S8TO32":
		if len(rest) != 3 || strings.ToUpper(rest[1]) != "BYTE" {
			return isa.CCfg{}, fmt.Errorf("S8TO32 requires BYTE <n>")
		}
		b, err := parseNum(rest[2])
		if err != nil || b > 3 {
			return isa.CCfg{}, fmt.Errorf("bad byte select %q", rest[2])
		}
		return isa.CCfg{Mode: isa.CS8to32, ByteSel: uint8(b)}, nil
	}
	return isa.CCfg{}, fmt.Errorf("bad C mode %q", rest[0])
}

func parseDCfg(rest []string) (isa.DCfg, error) {
	if len(rest) == 0 {
		return isa.DCfg{}, fmt.Errorf("D element requires a mode")
	}
	switch strings.ToUpper(rest[0]) {
	case "BYP":
		return isa.DCfg{}, nil
	case "SQR":
		if len(rest) != 1 {
			return isa.DCfg{}, fmt.Errorf("SQR takes no arguments")
		}
		return isa.DCfg{Mode: isa.DSquare}, nil
	case "MUL16", "MUL32":
		m := isa.DMul16
		if strings.ToUpper(rest[0]) == "MUL32" {
			m = isa.DMul32
		}
		src, imm, n, err := operand(rest[1:])
		if err != nil {
			return isa.DCfg{}, err
		}
		if len(rest) != 1+n {
			return isa.DCfg{}, fmt.Errorf("trailing tokens after D operand")
		}
		return isa.DCfg{Mode: m, Operand: src, Imm: imm}, nil
	}
	return isa.DCfg{}, fmt.Errorf("bad D mode %q", rest[0])
}

func parseFCfg(rest []string) (isa.FCfg, error) {
	if len(rest) == 1 && strings.ToUpper(rest[0]) == "BYP" {
		return isa.FCfg{}, nil
	}
	if len(rest) != 5 {
		return isa.FCfg{}, fmt.Errorf("F element requires LANES|MDS and four constants")
	}
	modes := map[string]isa.FMode{"LANES": isa.FLanes, "MDS": isa.FMDS}
	m, ok := modes[strings.ToUpper(rest[0])]
	if !ok {
		return isa.FCfg{}, fmt.Errorf("bad F mode %q", rest[0])
	}
	cfg := isa.FCfg{Mode: m}
	for i := 0; i < 4; i++ {
		v, err := parseNum(rest[1+i])
		if err != nil || v > 255 {
			return isa.FCfg{}, fmt.Errorf("bad F constant %q", rest[1+i])
		}
		cfg.Consts[i] = uint8(v)
	}
	return cfg, nil
}

func encodeLutLd(args []string) (isa.Instr, error) {
	if len(args) != 7 || strings.ToUpper(args[2]) != "BANK" || strings.ToUpper(args[4]) != "GROUP" {
		return isa.Instr{}, fmt.Errorf("LUTLD requires <slice> S8|S4 BANK <b> GROUP <g> <data>")
	}
	slice, err := parseSlice(args[0])
	if err != nil {
		return isa.Instr{}, err
	}
	var space4 bool
	switch strings.ToUpper(args[1]) {
	case "S8":
	case "S4":
		space4 = true
	default:
		return isa.Instr{}, fmt.Errorf("bad LUT space %q", args[1])
	}
	b, err := parseNum(args[3])
	if err != nil || b > 3 {
		return isa.Instr{}, fmt.Errorf("bad bank %q", args[3])
	}
	maxGroup := uint64(63)
	if space4 {
		maxGroup = 15
	}
	g, err := parseNum(args[5])
	if err != nil || g > maxGroup {
		return isa.Instr{}, fmt.Errorf("bad group %q", args[5])
	}
	d, err := parseNum(args[6])
	if err != nil || d > 0xffffffff {
		return isa.Instr{}, fmt.Errorf("bad LUT data %q", args[6])
	}
	return isa.Instr{
		Op: isa.OpLoadLUT, Slice: slice,
		LUT: isa.LUTAddr(space4, int(b), int(g)), Data: d,
	}, nil
}

func encodeShuf(args []string) (isa.Instr, error) {
	if len(args) != 10 {
		return isa.Instr{}, fmt.Errorf("SHUF requires <idx> LO|HI and 8 byte indices")
	}
	idx, err := parseNum(args[0])
	if err != nil || idx > 255 {
		// 255 is the slice row field's encoding limit; whether the machine
		// actually has that many shufflers is a question for cobra-vet,
		// which knows the target geometry.
		return isa.Instr{}, fmt.Errorf("bad shuffler index %q", args[0])
	}
	var cfg isa.ShufCfg
	switch strings.ToUpper(args[1]) {
	case "LO":
	case "HI":
		cfg.High = true
	default:
		return isa.Instr{}, fmt.Errorf("SHUF expects LO or HI, got %q", args[1])
	}
	for i := 0; i < 8; i++ {
		v, err := parseNum(args[2+i])
		if err != nil || v > 15 {
			return isa.Instr{}, fmt.Errorf("bad permutation entry %q", args[2+i])
		}
		cfg.Perm[i] = uint8(v)
	}
	return isa.Instr{Op: isa.OpCfgShuf, Slice: isa.SliceRow(int(idx)), Data: cfg.Encode()}, nil
}

func encodeInMux(args []string) (isa.Instr, error) {
	if len(args) == 0 {
		return isa.Instr{}, fmt.Errorf("INMUX requires a mode")
	}
	switch strings.ToUpper(args[0]) {
	case "EXT":
		return isa.Instr{Op: isa.OpCfgInMux, Data: isa.InMuxCfg{Mode: isa.InExternal}.Encode()}, nil
	case "FB":
		return isa.Instr{Op: isa.OpCfgInMux, Data: isa.InMuxCfg{Mode: isa.InFeedback}.Encode()}, nil
	case "ERAM":
		if len(args) != 5 || strings.ToUpper(args[1]) != "BANK" || strings.ToUpper(args[3]) != "ADDR" {
			return isa.Instr{}, fmt.Errorf("INMUX ERAM requires BANK <b> ADDR <a>")
		}
		b, err1 := parseNum(args[2])
		a, err2 := parseNum(args[4])
		if err1 != nil || err2 != nil || b > 3 || a > 255 {
			return isa.Instr{}, fmt.Errorf("bad INMUX ERAM bank/addr")
		}
		return isa.Instr{Op: isa.OpCfgInMux,
			Data: isa.InMuxCfg{Mode: isa.InERAM, Bank: uint8(b), Addr: uint8(a)}.Encode()}, nil
	}
	return isa.Instr{}, fmt.Errorf("bad INMUX mode %q", args[0])
}

func encodeWhite(args []string) (isa.Instr, error) {
	if len(args) < 2 {
		return isa.Instr{}, fmt.Errorf("WHITE requires cN and a mode")
	}
	col, err := parseCol(args[0])
	if err != nil {
		return isa.Instr{}, err
	}
	cfg := isa.WhiteCfg{Col: col}
	switch strings.ToUpper(args[1]) {
	case "OFF":
		if len(args) != 2 {
			return isa.Instr{}, fmt.Errorf("WHITE OFF takes no key")
		}
	case "XOR", "ADD", "XORIN", "ADDIN":
		if len(args) != 3 {
			return isa.Instr{}, fmt.Errorf("WHITE %s requires a key", args[1])
		}
		v, err := parseNum(args[2])
		if err != nil || v > 0xffffffff {
			return isa.Instr{}, fmt.Errorf("bad whitening key %q", args[2])
		}
		cfg.Key = uint32(v)
		mode := strings.ToUpper(args[1])
		if strings.HasSuffix(mode, "IN") {
			cfg.In = true
			mode = strings.TrimSuffix(mode, "IN")
		}
		if mode == "XOR" {
			cfg.Mode = isa.WhiteXor
		} else {
			cfg.Mode = isa.WhiteAdd
		}
	default:
		return isa.Instr{}, fmt.Errorf("bad WHITE mode %q", args[1])
	}
	return isa.Instr{Op: isa.OpCfgWhite, Data: cfg.Encode()}, nil
}

func encodeERAMW(args []string) (isa.Instr, error) {
	if len(args) != 6 || strings.ToUpper(args[1]) != "BANK" || strings.ToUpper(args[3]) != "ADDR" {
		return isa.Instr{}, fmt.Errorf("ERAMW requires cN BANK <b> ADDR <a> <val>")
	}
	col, err := parseCol(args[0])
	if err != nil {
		return isa.Instr{}, err
	}
	b, err1 := parseNum(args[2])
	a, err2 := parseNum(args[4])
	v, err3 := parseNum(args[5])
	if err1 != nil || err2 != nil || err3 != nil || b > 3 || a > 255 || v > 0xffffffff {
		return isa.Instr{}, fmt.Errorf("bad ERAMW arguments")
	}
	return isa.Instr{
		Op: isa.OpERAMWrite, Slice: isa.SliceCol(int(col)),
		Data: isa.ERAMWriteCfg{Bank: uint8(b), Addr: uint8(a), Value: uint32(v)}.Encode(),
	}, nil
}

func encodeCapCfg(args []string) (isa.Instr, error) {
	if len(args) < 2 {
		return isa.Instr{}, fmt.Errorf("CAPCFG requires cN and ON/OFF")
	}
	col, err := parseCol(args[0])
	if err != nil {
		return isa.Instr{}, err
	}
	switch strings.ToUpper(args[1]) {
	case "OFF":
		if len(args) != 2 {
			return isa.Instr{}, fmt.Errorf("CAPCFG OFF takes no arguments")
		}
		return isa.Instr{Op: isa.OpCfgCapture, Slice: isa.SliceCol(int(col))}, nil
	case "ON":
		if len(args) != 6 || strings.ToUpper(args[2]) != "BANK" || strings.ToUpper(args[4]) != "ADDR" {
			return isa.Instr{}, fmt.Errorf("CAPCFG ON requires BANK <b> ADDR <a>")
		}
		b, err1 := parseNum(args[3])
		a, err2 := parseNum(args[5])
		if err1 != nil || err2 != nil || b > 3 || a > 255 {
			return isa.Instr{}, fmt.Errorf("bad CAPCFG bank/addr")
		}
		return isa.Instr{
			Op: isa.OpCfgCapture, Slice: isa.SliceCol(int(col)),
			Data: isa.CaptureCfg{Enabled: true, Bank: uint8(b), Addr: uint8(a)}.Encode(),
		}, nil
	}
	return isa.Instr{}, fmt.Errorf("CAPCFG expects ON or OFF, got %q", args[1])
}
