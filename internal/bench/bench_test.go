package bench

import (
	"strings"
	"testing"

	"cobra/internal/datapath"
)

var benchKey = make([]byte, 16)

func TestMeasureAllVerifiesAndTrends(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is not short")
	}
	ms, err := MeasureAll(benchKey, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(Configurations()) {
		t.Fatalf("measurements = %d", len(ms))
	}
	perAlg := map[string][]Measurement{}
	for _, m := range ms {
		if !m.Verified {
			t.Errorf("%s-%d: outputs failed verification", m.Alg, m.Rounds)
		}
		if m.CyclesPerBlock <= 0 || m.Mbps <= 0 {
			t.Errorf("%s-%d: implausible measurement %+v", m.Alg, m.Rounds, m)
		}
		perAlg[m.Alg] = append(perAlg[m.Alg], m)
	}
	// Central Table 3 trend: within a cipher, the full unroll is the
	// fastest configuration and the single-round the slowest.
	for alg, rows := range perAlg {
		first, last := rows[0], rows[len(rows)-1]
		if last.Mbps <= first.Mbps {
			t.Errorf("%s: full unroll %.1f Mbps not above minimal %.1f", alg, last.Mbps, first.Mbps)
		}
	}
}

func TestFullUnrollsMeetATMRequirement(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is not short")
	}
	for _, c := range []Config{{"rc6", 20}, {"rijndael", 10}, {"serpent", 32}} {
		m, err := Measure(c, benchKey, 64)
		if err != nil {
			t.Fatal(err)
		}
		if m.Mbps < ATMRequirementMbps {
			t.Errorf("%s-%d: %.1f Mbps misses the 622 Mbps ATM requirement",
				c.Alg, c.Rounds, m.Mbps)
		}
	}
}

func TestTable1DataComplete(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 rows = %d, want 5", len(rows))
	}
	// Spot-check the published values.
	for _, r := range rows {
		if r.Alg == "Serpent" && (r.NFB14 != 16800 || r.FB11 != 444.2) {
			t.Errorf("Serpent row corrupted: %+v", r)
		}
		if r.Alg == "MARS" && (r.NFB14 != 0 || r.FB8 != 101.88) {
			t.Errorf("MARS row corrupted: %+v", r)
		}
	}
}

func TestFPGAEquivalent(t *testing.T) {
	if got := FPGAEquivalentMbps("rc6", 2); got != 497.4 {
		t.Errorf("rc6-2 FPGA = %v", got)
	}
	if got := FPGAEquivalentMbps("rc6", 20); got != 0 {
		t.Errorf("rc6-20 should have no FPGA figure, got %v", got)
	}
	if got := FPGAEquivalentMbps("nope", 1); got != 0 {
		t.Errorf("unknown alg = %v", got)
	}
}

func TestPaperDataSetsComplete(t *testing.T) {
	if len(PaperTable3()) != 14 || len(PaperTable6()) != 14 {
		t.Error("paper data sets must have 14 rows each")
	}
	cfg := map[Config]bool{}
	for _, c := range Configurations() {
		cfg[c] = true
	}
	for _, r := range PaperTable3() {
		if !cfg[Config{r.Alg, r.Rounds}] {
			t.Errorf("paper row %s-%d missing from Configurations", r.Alg, r.Rounds)
		}
	}
}

func TestTextRenderers(t *testing.T) {
	t1 := Table1Text()
	for _, sub := range []string{"MARS", "Serpent", "16800", "•"} {
		if !strings.Contains(t1, sub) {
			t.Errorf("Table1Text missing %q", sub)
		}
	}
	t2 := Table2Text()
	for _, sub := range []string{"Boolean", "40 of 41", "Modular Inversion", "1 of 41"} {
		if !strings.Contains(t2, sub) {
			t.Errorf("Table2Text missing %q", sub)
		}
	}
	t4 := Table4Text()
	for _, sub := range []string{"98,624", "10,606", "32-Bit Register"} {
		if !strings.Contains(t4, sub) {
			t.Errorf("Table4Text missing %q", sub)
		}
	}
	t5 := Table5Text(datapath.BaseGeometry())
	for _, sub := range []string{"2,773,184", "1,210,640", "Total"} {
		if !strings.Contains(t5, sub) {
			t.Errorf("Table5Text missing %q", sub)
		}
	}
}

func TestTable6AndCompareText(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	ms, err := MeasureAll(benchKey, 8)
	if err != nil {
		t.Fatal(err)
	}
	t6 := Table6Text(ms)
	if !strings.Contains(t6, "Norm CG") || !strings.Contains(t6, "rc6") {
		t.Errorf("Table6Text malformed:\n%s", t6)
	}
	cmp := Table3CompareText(ms)
	if !strings.Contains(cmp, "Cycles paper") {
		t.Errorf("compare text malformed")
	}
	t3 := Table3Text(ms)
	if !strings.Contains(t3, "Verified") {
		t.Errorf("Table3Text malformed")
	}
	atm := ATMText(ms)
	if !strings.Contains(atm, "622") {
		t.Errorf("ATMText malformed: %s", atm)
	}
}

func TestFigures(t *testing.T) {
	f1, err := Figure1Text(Config{"rijndael", 2}, benchKey)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"byte shuffler", "RCE MUL", "whitening"} {
		if !strings.Contains(f1, sub) {
			t.Errorf("Figure1Text missing %q", sub)
		}
	}
	f23, err := Figure23Text(Config{"rc6", 2}, benchKey)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"D(MUL32", "E1(SHL)", "r0.c1"} {
		if !strings.Contains(f23, sub) {
			t.Errorf("Figure23Text missing %q:\n%s", sub, f23)
		}
	}
}

func TestBuildRejectsUnknownAlg(t *testing.T) {
	if _, err := Build(Config{"nope", 1}, benchKey); err == nil {
		t.Error("expected error")
	}
	if _, err := Measure(Config{"nope", 1}, benchKey, 1); err == nil {
		t.Error("expected error")
	}
}

func TestSortMeasurements(t *testing.T) {
	ms := []Measurement{
		{Config: Config{"serpent", 8}},
		{Config: Config{"rc6", 20}},
		{Config: Config{"rc6", 1}},
		{Config: Config{"rijndael", 2}},
	}
	SortMeasurements(ms)
	want := []Config{{"rc6", 1}, {"rc6", 20}, {"rijndael", 2}, {"serpent", 8}}
	for i, c := range want {
		if ms[i].Config != c {
			t.Errorf("order[%d] = %+v, want %+v", i, ms[i].Config, c)
		}
	}
}

func TestComma(t *testing.T) {
	cases := map[int]string{
		0: "0", 12: "12", 123: "123", 1234: "1,234",
		6691514: "6,691,514", -1234567: "-1,234,567",
	}
	for v, want := range cases {
		if got := comma(v); got != want {
			t.Errorf("comma(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestBatchSweepShowsAmortization(t *testing.T) {
	// Streaming configurations must amortize their pipeline fill with
	// batch size; iterative ones must be batch-insensitive (§4.1).
	pts, err := BatchSweep(Config{"serpent", 32}, benchKey, []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !(pts[0].CyclesPerBlock > 10*pts[1].CyclesPerBlock) {
		t.Errorf("streaming fill not amortized: %v", pts)
	}
	it, err := BatchSweep(Config{"serpent", 16}, benchKey, []int{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	ratio := it[1].CyclesPerBlock / it[0].CyclesPerBlock
	if ratio < 0.9 || ratio > 1.15 {
		t.Errorf("iterative config should be batch-insensitive, got ratio %.2f", ratio)
	}
}

func TestBatchSweepText(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	text, err := BatchSweepText(benchKey)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"rc6-20", "serpent-16", "N=128"} {
		if !strings.Contains(text, sub) {
			t.Errorf("ablation text missing %q", sub)
		}
	}
}

func TestBuildDecryptConfigs(t *testing.T) {
	for _, c := range []Config{{"rc6", 2}, {"rijndael", 5}, {"serpent", 1}} {
		p, err := BuildDecrypt(c, benchKey)
		if err != nil {
			t.Fatalf("%s-%d: %v", c.Alg, c.Rounds, err)
		}
		if p.Cipher != c.Alg {
			t.Errorf("decrypt program cipher = %s", p.Cipher)
		}
	}
	if _, err := BuildDecrypt(Config{"nope", 1}, benchKey); err == nil {
		t.Error("expected error")
	}
}

func TestWindowSweepFindsInteriorOptimum(t *testing.T) {
	pts, err := WindowSweep(benchKey, []int{1, 2, 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// §3.4: window 2 balances reconfiguration bandwidth and clock rate for
	// serpent-1 (two reconfigurations per pass).
	if !(pts[1].Mbps > pts[0].Mbps && pts[1].Mbps > pts[2].Mbps) {
		t.Errorf("expected w=2 optimum: %.1f / %.1f / %.1f Mbps",
			pts[0].Mbps, pts[1].Mbps, pts[2].Mbps)
	}
	// Overfull stalls fall and underfull NOPs rise with the window.
	if !(pts[0].StallCycles > pts[1].StallCycles && pts[1].StallCycles > pts[2].StallCycles) {
		t.Error("overfull stalls should fall with window size")
	}
	if !(pts[0].NopSlots <= pts[1].NopSlots && pts[1].NopSlots < pts[2].NopSlots) {
		t.Error("underfull NOPs should rise with window size")
	}
}

func TestFeedbackSweepShowsFBPenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	pts, err := FeedbackSweep(benchKey, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.NFBMbps <= 2*p.FBMbps {
			t.Errorf("%s-%d: NFB %.1f Mbps should dwarf FB %.1f", p.Alg, p.Rounds, p.NFBMbps, p.FBMbps)
		}
	}
}

func TestWindowAndFeedbackText(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	wt, err := WindowSweepText(benchKey)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wt, "<- optimal") || !strings.Contains(wt, "F_DP") {
		t.Errorf("window sweep text malformed:\n%s", wt)
	}
	ft, err := FeedbackSweepText(benchKey)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"rc6-20", "NFB", "FB", "x"} {
		if !strings.Contains(ft, sub) {
			t.Errorf("feedback sweep text missing %q", sub)
		}
	}
}
