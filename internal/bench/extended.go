package bench

// The extended corpus: the 64-bit-block mappings beyond the paper's three
// evaluated ciphers — RC5, TEA, SIMON 64/128, Blowfish, and DES. Their
// Table 3-style rows land in EXPERIMENTS.md next to the pinned sweep;
// Configurations() itself stays frozen to the paper's set.

import (
	"bytes"
	"fmt"

	"cobra/internal/cipher"
	"cobra/internal/model"
	"cobra/internal/program"
)

// ExtendedConfigurations returns the 64-bit-cipher measurement sweep:
// every supported unroll depth for RC5, TEA and SIMON, the LUT-budget-
// capped Blowfish depths, and the single-stage DES mapping.
func ExtendedConfigurations() []Config {
	var out []Config
	for _, hw := range []int{1, 2, 3, 4, 6, 12} {
		out = append(out, Config{"rc5", hw})
	}
	for _, hw := range []int{1, 2, 4, 8, 16, 32} {
		out = append(out, Config{"tea", hw})
	}
	for _, hw := range []int{1, 2, 4, 11, 22, 44} {
		out = append(out, Config{"simon64", hw})
	}
	out = append(out, Config{"blowfish", 1}, Config{"blowfish", 2}, Config{"des", 1})
	return out
}

// desKey trims the measurement key to DES's 8 bytes, rejecting shorter
// ones up front (the builders index into it).
func desKey(key []byte) ([]byte, error) {
	if len(key) < 8 {
		return nil, fmt.Errorf("bench: des needs an 8-byte key, got %d bytes", len(key))
	}
	return key[:8], nil
}

// BuildExtended compiles one extended-corpus encryption configuration.
func BuildExtended(c Config, key []byte) (*program.Program, error) {
	switch c.Alg {
	case "rc5":
		return program.BuildRC5(key, c.Rounds, cipher.RC5Rounds)
	case "tea":
		return program.BuildTEA(key, c.Rounds)
	case "simon64":
		return program.BuildSIMON(key, c.Rounds)
	case "blowfish":
		return program.BuildBlowfish(key, c.Rounds)
	case "des":
		k, err := desKey(key)
		if err != nil {
			return nil, err
		}
		return program.BuildDES(k)
	}
	return nil, fmt.Errorf("bench: unknown extended algorithm %q", c.Alg)
}

// BuildExtendedDecrypt compiles one extended-corpus decryption
// configuration.
func BuildExtendedDecrypt(c Config, key []byte) (*program.Program, error) {
	switch c.Alg {
	case "rc5":
		return program.BuildRC5Decrypt(key, c.Rounds, cipher.RC5Rounds)
	case "tea":
		return program.BuildTEADecrypt(key, c.Rounds)
	case "simon64":
		return program.BuildSIMONDecrypt(key, c.Rounds)
	case "blowfish":
		return program.BuildBlowfishDecrypt(key, c.Rounds)
	case "des":
		k, err := desKey(key)
		if err != nil {
			return nil, err
		}
		return program.BuildDESDecrypt(k)
	}
	return nil, fmt.Errorf("bench: unknown extended algorithm %q", c.Alg)
}

// extendedReference constructs the host oracle for an extended
// configuration.
func extendedReference(c Config, key []byte) (cipher.Block, error) {
	switch c.Alg {
	case "rc5":
		return cipher.NewRC5(key)
	case "tea":
		return cipher.NewTEA(key)
	case "simon64":
		return cipher.NewSIMON64(key)
	case "blowfish":
		return cipher.NewBlowfish(key)
	case "des":
		k, err := desKey(key)
		if err != nil {
			return nil, err
		}
		return cipher.NewDES(k)
	}
	return nil, fmt.Errorf("bench: unknown extended algorithm %q", c.Alg)
}

// extendedBlocksPerSuperblock is 2 for the little-endian-word ciphers that
// pair two blocks across the 128-bit datapath, 1 for the mappings that
// spread one block over all four columns.
func extendedBlocksPerSuperblock(alg string) int {
	switch alg {
	case "rc5", "simon64":
		return 2
	}
	return 1
}

// PayloadBitsPerSuperblock reports how many cipher-payload bits one
// 128-bit superblock carries for alg: 128 for the paper's ciphers and the
// paired LE mappings, 64 for the mappings that spend two lanes on scratch.
func PayloadBitsPerSuperblock(alg string) int {
	switch alg {
	case "rc5", "tea", "simon64", "blowfish", "des":
		return 64 * extendedBlocksPerSuperblock(alg)
	}
	return 128
}

// extendedPack marshals 8-byte cipher blocks into superblocks for one
// extended algorithm; extendedUnpack inverts it on the datapath output.
func extendedPack(alg string, blocks []byte) ([]byte, error) {
	switch alg {
	case "rc5", "simon64": // little-endian words: raw concatenation
		out := make([]byte, len(blocks))
		copy(out, blocks)
		return out, nil
	case "tea", "blowfish": // big-endian words, one block per superblock
		out := make([]byte, 2*len(blocks))
		for i := 0; i*8 < len(blocks); i++ {
			copy(out[16*i:], blocks[8*i:8*i+8])
			program.SwapWords32(out[16*i : 16*i+8])
		}
		return out, nil
	case "des":
		return program.DESPack(blocks)
	}
	return nil, fmt.Errorf("bench: unknown extended algorithm %q", alg)
}

func extendedUnpack(alg string, sbs []byte) ([]byte, error) {
	switch alg {
	case "rc5", "simon64":
		out := make([]byte, len(sbs))
		copy(out, sbs)
		return out, nil
	case "tea", "blowfish":
		out := make([]byte, len(sbs)/2)
		for i := 0; 16*i < len(sbs); i++ {
			copy(out[8*i:], sbs[16*i:16*i+8])
			program.SwapWords32(out[8*i : 8*i+8])
		}
		return out, nil
	case "des":
		return program.DESUnpack(sbs)
	}
	return nil, fmt.Errorf("bench: unknown extended algorithm %q", alg)
}

// MeasureExtended runs one extended configuration over a batch of 64-bit
// blocks, verifies every output against the host cipher, and returns
// Table 3-style metrics. CyclesPerBlock is per 64-bit cipher block (half
// a superblock for the paired mappings), so rows are comparable across
// the corpus.
func MeasureExtended(c Config, key []byte, batch int) (Measurement, error) {
	p, err := BuildExtended(c, key)
	if err != nil {
		return Measurement{}, err
	}
	m, err := program.NewMachine(p)
	if err != nil {
		return Measurement{}, err
	}
	observe(m)
	if err := program.Load(m, p); err != nil {
		return Measurement{}, err
	}
	tm := model.Analyze(m.Array, model.DefaultDelays())

	// Round the batch up to a whole number of superblocks.
	bps := extendedBlocksPerSuperblock(c.Alg)
	if batch%bps != 0 {
		batch += bps - batch%bps
	}
	raw := testBatch((batch*8 + 15) / 16)
	blocks := make([]byte, 8*batch)
	for i := range blocks {
		blocks[i] = byte(raw[i/16][i/4%4] >> (8 * (i % 4)))
	}
	sbs, err := extendedPack(c.Alg, blocks)
	if err != nil {
		return Measurement{}, err
	}
	got := make([]byte, len(sbs))
	stats, err := program.RunBytes(m, p, got, sbs, program.Opts{})
	if err != nil {
		return Measurement{}, err
	}
	out, err := extendedUnpack(c.Alg, got)
	if err != nil {
		return Measurement{}, err
	}
	ref, err := extendedReference(c, key)
	if err != nil {
		return Measurement{}, err
	}
	want := make([]byte, len(blocks))
	for i := 0; i*8 < len(blocks); i++ {
		ref.Encrypt(want[8*i:8*i+8], blocks[8*i:8*i+8])
	}
	cpb := float64(stats.Cycles) / float64(batch)
	return Measurement{
		Config:         c,
		CyclesPerBlock: cpb,
		FreqMHz:        tm.DatapathMHz,
		Mbps:           tm.DatapathMHz * 64 / cpb, // 64-bit blocks, not 128
		FPGAMbps:       FPGAEquivalentMbps(c.Alg, c.Rounds),
		Rows:           p.Geometry.Rows,
		Instructions:   stats.Instructions,
		Stalled:        stats.Stalled,
		Nops:           stats.Nops,
		Verified:       bytes.Equal(out, want),
	}, nil
}

// MeasureAllExtended runs the whole extended sweep.
func MeasureAllExtended(key []byte, batch int) ([]Measurement, error) {
	var out []Measurement
	for _, c := range ExtendedConfigurations() {
		m, err := MeasureExtended(c, key, batch)
		if err != nil {
			return nil, fmt.Errorf("%s-%d: %w", c.Alg, c.Rounds, err)
		}
		out = append(out, m)
	}
	return out, nil
}
