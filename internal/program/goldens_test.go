package program_test

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"testing"

	"cobra/internal/bits"
	"cobra/internal/program"
)

// goldenVector is one known-answer line from testdata/vectors.txt.
type goldenVector struct {
	cipher string
	key    []byte
	pt     bits.Block128
	ct     bits.Block128
}

func loadGoldenVectors(t *testing.T) []goldenVector {
	t.Helper()
	f, err := os.Open("testdata/vectors.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var vecs []goldenVector
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			t.Fatalf("vectors.txt:%d: want 4 fields, got %d", line, len(fields))
		}
		unhex := func(s string) []byte {
			b, err := hex.DecodeString(s)
			if err != nil {
				t.Fatalf("vectors.txt:%d: bad hex %q: %v", line, s, err)
			}
			return b
		}
		pt, ct := unhex(fields[2]), unhex(fields[3])
		if len(pt) != 16 || len(ct) != 16 {
			t.Fatalf("vectors.txt:%d: plaintext/ciphertext must be one block", line)
		}
		vecs = append(vecs, goldenVector{
			cipher: fields[0],
			key:    unhex(fields[1]),
			pt:     bits.LoadBlock128(pt),
			ct:     bits.LoadBlock128(ct),
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(vecs) == 0 {
		t.Fatal("vectors.txt: no vectors")
	}
	return vecs
}

// goldenBuilders maps each vector's cipher name to the mappings that must
// reproduce it, at a mix of iterative and streaming unroll depths.
func goldenBuilders(t *testing.T, cipher string, key []byte) map[string]*program.Program {
	t.Helper()
	out := make(map[string]*program.Program)
	add := func(label string, p *program.Program, err error) {
		if err != nil {
			t.Fatalf("%s: build: %v", label, err)
		}
		out[label] = p
	}
	switch cipher {
	case "rc6":
		for _, hw := range []int{1, 4, 20} {
			p, err := program.BuildRC6(key, hw, 20)
			add(fmt.Sprintf("rc6-%d", hw), p, err)
		}
	case "rijndael":
		for _, hw := range []int{1, 2, 10} {
			p, err := program.BuildRijndael(key, hw)
			add(fmt.Sprintf("rijndael-%d", hw), p, err)
		}
	case "serpentcobra":
		for _, hw := range []int{1, 8, 32} {
			p, err := program.BuildSerpent(key, hw)
			add(fmt.Sprintf("serpent-%d", hw), p, err)
		}
		p, err := program.BuildSerpentWindowed(key, 4)
		add("serpent-w4", p, err)
	default:
		t.Fatalf("unknown cipher %q in vectors.txt", cipher)
	}
	return out
}

// TestGoldenVectors runs every published (or pinned) known-answer vector
// through both execution engines — the cycle-accurate interpreter and the
// trace-compiled fastpath executor — across representative unroll depths.
// A divergence in either engine, at any depth, fails against an external
// reference rather than merely against the other engine.
func TestGoldenVectors(t *testing.T) {
	for i, v := range loadGoldenVectors(t) {
		v := v
		t.Run(fmt.Sprintf("%s-%d", v.cipher, i), func(t *testing.T) {
			for label, p := range goldenBuilders(t, v.cipher, v.key) {
				m, err := program.NewMachine(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := program.Load(m, p); err != nil {
					t.Fatal(err)
				}
				in := []bits.Block128{v.pt}
				got := make([]bits.Block128, 1)
				if _, err := program.EncryptInto(m, p, got, in); err != nil {
					t.Fatalf("%s: interpreter: %v", label, err)
				}
				if got[0] != v.ct {
					t.Errorf("%s: interpreter ciphertext %08x, want %08x", label, got[0], v.ct)
				}
				ex, err := p.Compile()
				if err != nil {
					t.Fatalf("%s: compile: %v", label, err)
				}
				got[0] = bits.Block128{}
				if _, err := ex.EncryptInto(got, in); err != nil {
					t.Fatalf("%s: fastpath: %v", label, err)
				}
				if got[0] != v.ct {
					t.Errorf("%s: fastpath ciphertext %08x, want %08x", label, got[0], v.ct)
				}
			}
		})
	}
}
