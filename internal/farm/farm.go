// Package farm scales the COBRA reproduction beyond a single device: it
// owns a pool of independently configured core.Device replicas — each
// device drives its own sim.Machine, which is not safe for concurrent use
// — and shards non-feedback workloads across them. The paper's Table 1
// splits modes of operation into feedback and non-feedback precisely
// because the latter admit this replication: in counter mode every
// keystream block E(iv+i) is independent, so a message splits into
// contiguous counter ranges that N devices encrypt concurrently. This is
// the software analogue of tiling several COBRA parts on a board, and the
// same data-parallel mapping the related work applies to replicated SIMON
// cores and programmable-hardware crypto kernels (PAPERS.md).
//
// Dispatch is program-aware (see pool.go): shards are placed on workers
// whose device already holds the tenant's compiled program, idle workers
// steal work — same-program first — and the active worker set scales
// elastically with load. A Pool can be shared by many tenants (the
// cobrad deployment shape: Pool.Open per tenant key), or owned by a
// single Farm via Open/New. Workers write ciphertext directly into
// disjoint regions of the caller's destination buffer, so reassembly is
// ordered by construction, and each job carries its caller's context so
// cancellation and timeouts short-circuit queued work.
//
// A Farm implements core.Cipher — the unified API — including both
// directions of every mode. ECB, CTR, and CBC *decryption* shard across
// the pool (CBC decryption is non-feedback: P[k] = D(C[k]) xor C[k-1]
// needs only ciphertext the caller already holds, so shard boundaries
// simply overlap the ciphertext by one block); CBC encryption is the
// feedback mode, serialized onto a single worker (Table 1's FB-column
// penalty made operational). Every farm carries an internal/obs registry
// aggregating its workers' device registries under worker="N" labels
// plus farm-level queue/shard/scheduler series; attach it to obs.Default
// via Options.Metrics and cobra-farm's -metrics flag serves it live.
package farm

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"cobra/internal/core"
	"cobra/internal/obs"
	"cobra/internal/sim"
)

// ErrClosed is returned by cipher calls made after Close.
var ErrClosed = errors.New("farm: closed")

// DefaultShardBlocks caps a shard at this many 128-bit blocks. Large
// messages therefore split into several jobs per worker, which keeps the
// queue busy (pipelining across shards) at the cost of one pipeline
// fill-and-drain per shard on streaming configurations.
const DefaultShardBlocks = 1024

// workerQueueDepth is the default per-worker queue capacity; dispatch
// blocks (backpressure) once a worker is this many shards behind.
const workerQueueDepth = 2

type mode int

const (
	modeCTR mode = iota
	modeECB
	modeCBC
	modeDecECB
	modeDecCBC
	modeCount
)

var modeNames = [modeCount]string{"ctr", "ecb", "cbc", "decrypt_ecb", "decrypt_cbc"}

// A job is one contiguous shard of a cipher call: a counter range (or
// IV) plus the matching source and destination windows, tagged with the
// tenant it belongs to (the scheduler routes by tn.pk).
type job struct {
	ctx  context.Context
	tn   *Farm
	mode mode
	iv   [16]byte // starting counter block (CTR) or IV (CBC)
	src  []byte
	dst  []byte
	errc chan<- error
}

// farmMetrics is the tenant-level (per-Farm) instrumentation.
type farmMetrics struct {
	requests [modeCount]*obs.Counter
	errsBy   [modeCount]*obs.Counter
}

func newFarmMetrics(reg *obs.Registry) *farmMetrics {
	m := &farmMetrics{}
	for i, name := range modeNames {
		l := obs.L("mode", name)
		m.requests[i] = reg.Counter("cobra_farm_requests_total", "Farm-level API calls.", l)
		m.errsBy[i] = reg.Counter("cobra_farm_errors_total", "Farm-level API calls that returned an error.", l)
	}
	return m
}

// tenantSlot accumulates one worker's contribution to one tenant.
// Per-call sim.Stats returned by the device *Into methods are summed
// here rather than read back from the device, because a shared worker's
// device is reconfigured between tenants and its own stats view resets.
type tenantSlot struct {
	mu     sync.Mutex
	jobs   int
	busyNs int64
	stats  sim.Stats

	jobsSnap  int
	busySnap  int64
	statsSnap sim.Stats
}

// Farm is one tenant's cipher view of a worker pool. Unlike a single
// Device, a Farm is safe for concurrent use: any number of goroutines
// may call its cipher methods simultaneously and their shards interleave
// across the pool.
type Farm struct {
	pool     *Pool
	ownsPool bool

	alg  core.Algorithm
	key  []byte
	wcfg core.Config // per-worker device config (no Metrics/Trace)
	pk   progKey

	mhz      float64
	unroll   int
	rows     int
	fastpath bool

	reg *obs.Registry
	met *farmMetrics

	slots []tenantSlot

	mu     sync.Mutex
	calls  sync.WaitGroup
	closed bool
}

// Farm satisfies the unified cipher API (the twin of core's Device
// assertion); farm's cipher_test swap test exercises both through the
// interface.
var _ core.Cipher = (*Farm)(nil)

// Open starts a pool per opts and opens a single tenant on it for the
// algorithm/key pair (device configuration from opts.Config). The
// returned Farm owns the pool: its Close shuts the workers down.
func Open(alg core.Algorithm, key []byte, opts Options) (*Farm, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	p, err := newPool(o, obs.L("alg", string(alg)))
	if err != nil {
		return nil, err
	}
	f, err := p.Open(alg, key, o.Config)
	if err != nil {
		p.Close()
		return nil, err
	}
	f.ownsPool = true
	p.reg.Attach(f.reg)
	return f, nil
}

// New configures a pool of workers identical devices for the
// algorithm/key pair.
//
// Deprecated: use Open with an Options struct (or NewPool + Pool.Open
// for a multi-tenant pool). New survives as a shim over Open and keeps
// its historical validation; cobra-lint's farmnew analyzer flags new
// callers.
func New(alg core.Algorithm, key []byte, cfg core.Config, workers int) (*Farm, error) {
	if workers < 1 {
		return nil, fmt.Errorf("farm: need at least 1 worker, got %d", workers)
	}
	return Open(alg, key, Options{Workers: workers, Config: cfg})
}

// Open opens a tenant on the pool: a Farm for one algorithm/key/config
// triple whose shards the scheduler batches onto program-affine workers.
// cfg's Metrics and Trace fields are ignored (those are pool-level
// options); Unroll, Interpreter, and Validate configure the tenant's
// devices. The key and config are validated eagerly by configuring a
// probe device, which is donated to an idle worker when one is free to
// take it (warming the tenant's first placement).
//
// Closing a tenant Farm does not close a shared pool; closing the pool
// invalidates its tenants.
func (p *Pool) Open(alg core.Algorithm, key []byte, cfg core.Config) (*Farm, error) {
	wcfg := cfg
	wcfg.Metrics, wcfg.Trace = nil, 0
	probe, err := core.Configure(alg, key, wcfg)
	if err != nil {
		return nil, fmt.Errorf("farm: configuring device: %w", err)
	}
	f := &Farm{
		pool: p,
		alg:  alg,
		key:  append([]byte(nil), key...),
		wcfg: wcfg,
		pk: progKey{
			alg:      alg,
			unroll:   wcfg.Unroll,
			key:      string(key),
			interp:   wcfg.Interpreter,
			validate: wcfg.Validate,
		},
		fastpath: probe.UsesFastpath(),
		slots:    make([]tenantSlot, len(p.workers)),
	}
	r := probe.Report()
	f.mhz, f.unroll, f.rows = r.DatapathMHz, r.Unroll, r.Rows
	f.reg = obs.NewRegistry()
	f.met = newFarmMetrics(f.reg)

	// Donate the probe to an idle device-less worker and pre-bind it, so
	// the tenant's first shards land on an already-configured device.
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return nil, ErrClosed
	}
	var gifted *worker
	p.mu.Lock()
	for _, w := range p.workers {
		// Check running first: w.dev may only be read once the worker is
		// seen idle under mu (a running worker writes dev unlocked in
		// ensure; running=false is published under mu after that write).
		if !w.running && len(w.q) == 0 && !w.boundSet && w.dev == nil {
			w.dev = probe
			w.loaded, w.loadedSet = f.pk, true
			w.bound, w.boundSet = f.pk, true
			gifted = w
			break
		}
	}
	p.mu.Unlock()
	if gifted != nil {
		p.reg.Attach(probe.Obs(), obs.L("worker", strconv.Itoa(gifted.idx)))
	}
	return f, nil
}

// Algorithm returns the configured algorithm.
func (f *Farm) Algorithm() core.Algorithm { return f.alg }

// BlockSize returns the cipher block size in bytes.
func (f *Farm) BlockSize() int { return 16 }

// Workers returns the pool size.
func (f *Farm) Workers() int { return f.pool.Workers() }

// Pool returns the worker pool this tenant dispatches to.
func (f *Farm) Pool() *Pool { return f.pool }

// Obs returns the farm's metrics registry. For a pool-owning Farm (Open
// or New) this is the pool registry — scheduler series, worker device
// subtrees, and the tenant's request counters all in one tree, exactly
// the shape the pre-scheduler farm exported. For a tenant on a shared
// pool it is the tenant's own registry (per-mode request/error
// counters); the pool's registry is shared state the pool owner exports.
func (f *Farm) Obs() *obs.Registry {
	if f.ownsPool {
		return f.pool.reg
	}
	return f.reg
}

// QueueDepth reports the pool's queued-shard total (the cobrad
// admission signal).
func (f *Farm) QueueDepth() int { return f.pool.QueueDepth() }

// QueueCapacity reports the saturation point of QueueDepth.
func (f *Farm) QueueCapacity() int { return f.pool.QueueCapacity() }

// UsesFastpath reports whether this tenant's program serves bulk
// encryption on the trace-compiled executor (probed at Open; the
// workers are replicas, so one answer covers the pool).
func (f *Farm) UsesFastpath() bool { return f.fastpath }

// account records one finished job's contribution to this tenant's
// report. Called from worker goroutines.
func (f *Farm) account(idx int, st sim.Stats, busyNs int64) {
	s := &f.slots[idx]
	s.mu.Lock()
	s.jobs++
	s.busyNs += busyNs
	s.stats.Add(st)
	s.mu.Unlock()
}

// span is a half-open byte range of one shard.
type span struct{ off, end int }

// shards splits n bytes into contiguous block-aligned spans: one per
// worker when the message is small, capped at the pool's ShardBlocks so
// large messages pipeline through the queues.
func (f *Farm) shards(n int) []span {
	nb := (n + 15) / 16
	per := (nb + f.pool.Workers() - 1) / f.pool.Workers()
	if per > f.pool.opts.ShardBlocks {
		per = f.pool.opts.ShardBlocks
	}
	var out []span
	for off := 0; off < n; off += per * 16 {
		end := off + per*16
		if end > n {
			end = n
		}
		out = append(out, span{off, end})
	}
	return out
}

// dispatch fans the given shards of one call out over the pool's
// scheduler and waits for every dispatched shard to report back. mk
// fills in the mode-specific job fields for a shard.
func (f *Farm) dispatch(ctx context.Context, src, dst []byte, shards []span, mk func(span) (job, error)) error {
	if len(src) == 0 {
		return ctx.Err()
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	f.calls.Add(1)
	f.mu.Unlock()
	defer f.calls.Done()

	p := f.pool
	p.closeMu.RLock()
	if p.closed {
		p.closeMu.RUnlock()
		return ErrClosed
	}
	errc := make(chan error, len(shards))
	used := make([]bool, p.Workers()) // workers this call already landed on
	sent := 0
	var firstErr error
	for _, s := range shards {
		j, err := mk(s)
		if err != nil {
			firstErr = err
			break
		}
		j.ctx, j.tn, j.src, j.dst, j.errc = ctx, f, src[s.off:s.end], dst[s.off:s.end], errc
		sp := p.met.queueWait.Start()
		err = p.place(ctx, j, used)
		sp.End()
		if err != nil {
			firstErr = err
			break
		}
		sent++
		p.met.shards.Inc()
		p.met.shardSize.Observe(int64((s.end - s.off + 15) / 16))
	}
	p.closeMu.RUnlock()
	// Drain every dispatched shard, even after an error: workers always
	// reply, so this cannot deadlock, and it keeps dst ownership clean.
	for i := 0; i < sent; i++ {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// finish closes out one farm-level call's accounting.
func (f *Farm) finish(md mode, err error) {
	if err != nil {
		f.met.errsBy[md].Inc()
	}
}

// EncryptCTR encrypts src in counter mode with initial counter block iv
// (16 bytes), sharding the counter range across the pool: shard k starting
// at block offset b is keyed by counter iv+b, so the farm's output is
// byte-identical to a single device's EncryptCTR. src may end in a partial
// block. ctx cancels or times out the call; queued shards short-circuit,
// and the in-flight ones finish their simulation before the call returns.
func (f *Farm) EncryptCTR(ctx context.Context, iv, src []byte) ([]byte, error) {
	f.met.requests[modeCTR].Inc()
	if len(iv) != 16 {
		f.met.errsBy[modeCTR].Inc()
		return nil, fmt.Errorf("farm: iv must be 16 bytes")
	}
	dst := make([]byte, len(src))
	err := f.dispatch(ctx, src, dst, f.shards(len(src)), func(s span) (job, error) {
		ctr, err := core.AddCounter(iv, uint64(s.off/16))
		if err != nil {
			return job{}, err
		}
		return job{mode: modeCTR, iv: ctr}, nil
	})
	f.finish(modeCTR, err)
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// DecryptCTR inverts EncryptCTR; counter mode is an involution.
func (f *Farm) DecryptCTR(ctx context.Context, iv, src []byte) ([]byte, error) {
	return f.EncryptCTR(ctx, iv, src)
}

// EncryptECB encrypts src (a multiple of 16 bytes) in electronic-codebook
// mode, sharding by block range — ECB is the paper's measurement mode and
// the other non-feedback workload of Table 1.
func (f *Farm) EncryptECB(ctx context.Context, src []byte) ([]byte, error) {
	f.met.requests[modeECB].Inc()
	if len(src)%16 != 0 {
		f.met.errsBy[modeECB].Inc()
		return nil, fmt.Errorf("farm: input length %d is not a multiple of the block size", len(src))
	}
	dst := make([]byte, len(src))
	err := f.dispatch(ctx, src, dst, f.shards(len(src)), func(span) (job, error) {
		return job{mode: modeECB}, nil
	})
	f.finish(modeECB, err)
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// DecryptECB inverts EncryptECB on the decryption datapath. Decryption
// in ECB is as shardable as encryption — every block is independent —
// so it fans out exactly like EncryptECB.
func (f *Farm) DecryptECB(ctx context.Context, src []byte) ([]byte, error) {
	f.met.requests[modeDecECB].Inc()
	if len(src)%16 != 0 {
		f.met.errsBy[modeDecECB].Inc()
		return nil, fmt.Errorf("farm: input length %d is not a multiple of the block size", len(src))
	}
	dst := make([]byte, len(src))
	err := f.dispatch(ctx, src, dst, f.shards(len(src)), func(span) (job, error) {
		return job{mode: modeDecECB}, nil
	})
	f.finish(modeDecECB, err)
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// EncryptCBC encrypts src in cipher-block-chaining mode. CBC encryption
// is a feedback mode — each block depends on the previous ciphertext —
// so the message cannot shard: the whole call is a single job serialized
// onto one worker, and throughput degrades to a single device's
// fill+drain-per-block rate exactly as the paper's Table 1 FB column
// predicts. The farm still provides it so the unified Cipher surface is
// mode-complete on every backend.
func (f *Farm) EncryptCBC(ctx context.Context, iv, src []byte) ([]byte, error) {
	f.met.requests[modeCBC].Inc()
	if len(iv) != 16 {
		f.met.errsBy[modeCBC].Inc()
		return nil, fmt.Errorf("farm: iv must be 16 bytes")
	}
	if len(src)%16 != 0 {
		f.met.errsBy[modeCBC].Inc()
		return nil, fmt.Errorf("farm: input length %d is not a multiple of the block size", len(src))
	}
	dst := make([]byte, len(src))
	var ivb [16]byte
	copy(ivb[:], iv)
	err := f.dispatch(ctx, src, dst, []span{{0, len(src)}}, func(span) (job, error) {
		return job{mode: modeCBC, iv: ivb}, nil
	})
	f.finish(modeCBC, err)
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// DecryptCBC inverts EncryptCBC. Unlike the encryption direction, CBC
// decryption is *not* a feedback mode: P[k] = D(C[k]) xor C[k-1] needs
// only the previous ciphertext block, which the caller already holds in
// src — so the message shards across the pool like ECB, with each
// shard's chaining IV taken from the ciphertext one block before its
// boundary (the call IV for the first shard).
func (f *Farm) DecryptCBC(ctx context.Context, iv, src []byte) ([]byte, error) {
	f.met.requests[modeDecCBC].Inc()
	if len(iv) != 16 {
		f.met.errsBy[modeDecCBC].Inc()
		return nil, fmt.Errorf("farm: iv must be 16 bytes")
	}
	if len(src)%16 != 0 {
		f.met.errsBy[modeDecCBC].Inc()
		return nil, fmt.Errorf("farm: input length %d is not a multiple of the block size", len(src))
	}
	dst := make([]byte, len(src))
	err := f.dispatch(ctx, src, dst, f.shards(len(src)), func(s span) (job, error) {
		j := job{mode: modeDecCBC}
		if s.off == 0 {
			copy(j.iv[:], iv)
		} else {
			copy(j.iv[:], src[s.off-16:s.off])
		}
		return j, nil
	})
	f.finish(modeDecCBC, err)
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// Close invalidates the tenant; for a pool-owning Farm (Open/New) it
// also drains and stops the workers and detaches the registry from its
// Metrics parent. Calls already dispatching finish normally; calls made
// after Close return ErrClosed. Idempotent.
func (f *Farm) Close() error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.calls.Wait()
	if f.ownsPool {
		return f.pool.Close()
	}
	return nil
}

// WorkerReport is one worker's accumulated counters for this tenant.
type WorkerReport struct {
	Jobs   int       `json:"jobs"`
	BusyNs int64     `json:"busy_ns"`
	Stats  sim.Stats `json:"stats"`
}

// Report aggregates the tenant's counters: the backend-independent
// core.Summary (Stats totals the workers; ThroughputMbps is the simulated
// aggregate rate) plus the farm-only breakdown. With every device clocked
// alike, WallCycles — the busiest worker's datapath cycles — is the
// simulated wall-clock of the farm, so EffectiveMbps = output bits /
// (WallCycles / DatapathMHz) is the aggregate simulated throughput: N
// ideally-scaling workers multiply a single device's Table 3 rate by N.
// Field names and JSON tags are a stable reporting surface (pinned by the
// golden test in report_test.go).
type Report struct {
	core.Summary
	PerWorker  []WorkerReport `json:"per_worker"`
	WallCycles int            `json:"wall_cycles"`
	// EffectiveMbps duplicates Summary.ThroughputMbps under the farm's
	// historical name.
	EffectiveMbps float64 `json:"effective_mbps"`
}

// Report snapshots the tenant's counters; safe to call while jobs are
// in flight. Stats are summed from the per-call sim.Stats each device
// run returns (not read back from devices, which a shared pool
// reconfigures between tenants).
func (f *Farm) Report() Report {
	r := Report{Summary: core.Summary{
		Algorithm:   f.alg,
		Backend:     "farm",
		Workers:     f.pool.Workers(),
		Unroll:      f.unroll,
		Rows:        f.rows,
		DatapathMHz: f.mhz,
	}}
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		wr := WorkerReport{
			Jobs:   s.jobs - s.jobsSnap,
			BusyNs: s.busyNs - s.busySnap,
			Stats:  s.stats.Delta(s.statsSnap),
		}
		s.mu.Unlock()
		r.PerWorker = append(r.PerWorker, wr)
		r.Stats.Add(wr.Stats)
		if wr.Stats.Cycles > r.WallCycles {
			r.WallCycles = wr.Stats.Cycles
		}
	}
	if r.Stats.BlocksOut > 0 {
		r.CyclesPerBlock = float64(r.Stats.Cycles) / float64(r.Stats.BlocksOut)
	}
	if r.WallCycles > 0 {
		r.EffectiveMbps = float64(r.Stats.BlocksOut) * 128 * f.mhz / float64(r.WallCycles)
	}
	r.ThroughputMbps = r.EffectiveMbps
	return r
}

// Summary returns the backend-independent view of Report (the Cipher
// accessor).
func (f *Farm) Summary() core.Summary { return f.Report().Summary }

// ResetStats rewinds the tenant's report view between measurement
// phases without disturbing exported /metrics series (which stay
// monotonic). Safe while jobs are in flight.
func (f *Farm) ResetStats() {
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		s.jobsSnap = s.jobs
		s.busySnap = s.busyNs
		s.statsSnap = s.stats
		s.mu.Unlock()
	}
}
