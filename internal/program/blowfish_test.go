package program

import (
	"bytes"
	"testing"
	"testing/quick"

	"cobra/internal/cipher"
)

// blowfishDepths are the unroll depths the iRAM's LUT budget admits.
var blowfishDepths = []int{1, 2}

func TestBlowfishOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewBlowfish(testKey)
	if err != nil {
		t.Fatal(err)
	}
	want := refEncryptECB(t, ref, testPlain) // 8 blocks, one per superblock
	for _, hw := range blowfishDepths {
		p, err := BuildBlowfish(testKey, hw)
		if err != nil {
			t.Fatalf("blowfish-%d: %v", hw, err)
		}
		got, stats := cobraEncryptECB(t, p, be64Pack(testPlain))
		if !bytes.Equal(be64Unpack(got), want) {
			t.Errorf("blowfish-%d: ciphertext mismatch\n got %x\nwant %x", hw, be64Unpack(got), want)
		}
		perBlock := float64(stats.Cycles) / float64(len(testPlain)/8)
		t.Logf("blowfish-%d: %.1f cycles per 64-bit block (%d cycles)", hw, perBlock, stats.Cycles)
	}
}

func TestBlowfishDecryptOnCOBRAAllUnrolls(t *testing.T) {
	ref, err := cipher.NewBlowfish(testKey)
	if err != nil {
		t.Fatal(err)
	}
	ct := refEncryptECB(t, ref, testPlain)
	for _, hw := range blowfishDepths {
		p, err := BuildBlowfishDecrypt(testKey, hw)
		if err != nil {
			t.Fatalf("blowfish-dec-%d: %v", hw, err)
		}
		got, _ := cobraEncryptECB(t, p, be64Pack(ct))
		if !bytes.Equal(be64Unpack(got), testPlain) {
			t.Errorf("blowfish-dec-%d: plaintext mismatch\n got %x\nwant %x", hw, be64Unpack(got), testPlain)
		}
	}
}

func TestBlowfishOnCOBRARandomized(t *testing.T) {
	f := func(key [16]byte, blk [8]byte) bool {
		ref, err := cipher.NewBlowfish(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 8)
		ref.Encrypt(want, blk[:])
		p, err := BuildBlowfish(key[:], 1)
		if err != nil {
			return false
		}
		m, err := NewMachine(p)
		if err != nil {
			return false
		}
		if err := Load(m, p); err != nil {
			return false
		}
		got, _, err := EncryptBytes(m, p, be64Pack(blk[:]))
		return err == nil && bytes.Equal(be64Unpack(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBlowfishUnrollRejectsBadDepth(t *testing.T) {
	if _, err := BuildBlowfish(testKey, 3); err == nil {
		t.Error("expected error: 3 does not divide 16")
	}
	if _, err := BuildBlowfish(testKey, 4); err == nil {
		t.Error("expected error: depth 4 exceeds the LUT budget")
	}
	if _, err := BuildBlowfishDecrypt(testKey, 0); err == nil {
		t.Error("expected error for depth 0")
	}
	if _, err := BuildBlowfish(nil, 1); err == nil {
		t.Error("expected key size error")
	}
}
