package bench

import (
	"encoding/json"

	"cobra/internal/datapath"
	"cobra/internal/model"
)

// JSONReport is the machine-readable form of the measured evaluation,
// emitted by cobra-bench -json so the benchmark trajectory (BENCH_*.json)
// and other tooling can consume the reproduction's metrics without
// scraping the tabwriter output.
type JSONReport struct {
	// ATMRequirementMbps is the §1 headline requirement.
	ATMRequirementMbps int `json:"atm_requirement_mbps"`
	// Batch is the blocks-per-measurement used for the sweep.
	Batch int `json:"batch"`
	// Table3 is the per-configuration performance sweep.
	Table3 []Measurement `json:"table3"`
	// Table6 is the cycle-gates product sweep derived from Table3.
	Table6 []model.CGRow `json:"table6"`
	// GatesBase is the Table 5 total for the base 4x4 geometry.
	GatesBase int `json:"gates_base_4x4"`
	// Fastpath archives the interpreter-vs-trace-compiled executor
	// comparison (cobra-bench -fastpath); omitted when not measured.
	Fastpath []FastpathMeasurement `json:"fastpath,omitempty"`
}

// ReportJSON renders the measured tables as indented JSON. fms may be nil
// when the fastpath comparison was not requested.
func ReportJSON(ms []Measurement, fms []FastpathMeasurement, batch int) ([]byte, error) {
	r := JSONReport{
		ATMRequirementMbps: ATMRequirementMbps,
		Batch:              batch,
		Table3:             ms,
		Table6:             Table6Rows(ms),
		GatesBase:          model.Table5(model.Table4(), datapath.BaseGeometry()).Total(),
		Fastpath:           fms,
	}
	return json.MarshalIndent(r, "", "  ")
}
