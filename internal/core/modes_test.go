package core

import (
	"bytes"
	"context"
	"encoding/hex"
	"fmt"
	"testing"

	"cobra/internal/cipher"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// NIST SP 800-38A, Appendix F: AES-128 mode-of-operation example vectors.
// The same key and four plaintext blocks drive F.1.1 (ECB), F.2.1 (CBC)
// and F.5.1 (CTR).
const (
	nistKey = "2b7e151628aed2a6abf7158809cf4f3c"
	nistPT  = "6bc1bee22e409f96e93d7e117393172a" +
		"ae2d8a571e03ac9c9eb76fac45af8e51" +
		"30c81c46a35ce411e5fbc1191a0a52ef" +
		"f69f2445df4f9b17ad2b417be66c3710"

	nistECB = "3ad77bb40d7a3660a89ecaf32466ef97" +
		"f5d3d58503b9699de785895a96fdbaaf" +
		"43b1cd7f598ece23881b00e3ed030688" +
		"7b0c785e27e8ad3f8223207104725dd4"

	nistCBCIV = "000102030405060708090a0b0c0d0e0f"
	nistCBC   = "7649abac8119b246cee98e9b12e9197d" +
		"5086cb9b507219ee95db113a917678b2" +
		"73bed6b8e3c1743b7116e69e22229516" +
		"3ff1caa1681fac09120eca307586e1a7"

	nistCTRIV = "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"
	nistCTR   = "874d6191b620e3261bef6864990db6ce" +
		"9806f66b7970fdff8617187bb9fffdff" +
		"5ae4df3edbd5d35e5b4f09020db03eab" +
		"1e031dda2fbe03d1792170a0f3009cee"
)

// nistDevice configures the Rijndael datapath at every published unroll
// depth so the vectors cover both the iterative and streaming pipelines.
func nistUnrolls() []int { return []int{1, 2, 5, 10} }

// forEachNISTDevice runs f on a device for every unroll depth × execution
// engine: the trace-compiled fastpath (the default) and the forced
// cycle-accurate interpreter, so the official vectors pin both executors
// independently.
func forEachNISTDevice(t *testing.T, f func(t *testing.T, label string, d *Device)) {
	t.Helper()
	for _, u := range nistUnrolls() {
		for _, interp := range []bool{false, true} {
			engine := "fastpath"
			if interp {
				engine = "interpreter"
			}
			d, err := Configure(Rijndael, unhex(t, nistKey), Config{Unroll: u, Interpreter: interp})
			if err != nil {
				t.Fatal(err)
			}
			if !interp && !d.UsesFastpath() {
				t.Fatalf("unroll %d: fastpath refused: %v", u, d.FastpathErr())
			}
			f(t, fmt.Sprintf("unroll %d/%s", u, engine), d)
		}
	}
}

func TestRijndaelECBMatchesSP800_38A(t *testing.T) {
	pt, want := unhex(t, nistPT), unhex(t, nistECB)
	forEachNISTDevice(t, func(t *testing.T, label string, d *Device) {
		got, err := d.EncryptECB(context.Background(), pt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: ECB = %x, want %x", label, got, want)
		}
	})
}

func TestRijndaelCBCMatchesSP800_38A(t *testing.T) {
	pt, iv, want := unhex(t, nistPT), unhex(t, nistCBCIV), unhex(t, nistCBC)
	forEachNISTDevice(t, func(t *testing.T, label string, d *Device) {
		got, err := d.EncryptCBC(context.Background(), iv, pt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: CBC = %x, want %x", label, got, want)
		}
		back, err := d.DecryptCBC(context.Background(), iv, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, pt) {
			t.Errorf("%s: CBC round trip failed", label)
		}
	})
}

func TestRijndaelCTRMatchesSP800_38A(t *testing.T) {
	pt, iv, want := unhex(t, nistPT), unhex(t, nistCTRIV), unhex(t, nistCTR)
	forEachNISTDevice(t, func(t *testing.T, label string, d *Device) {
		got, err := d.EncryptCTR(context.Background(), iv, pt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: CTR = %x, want %x", label, got, want)
		}
	})
}

// refCTR generates the counter-mode ciphertext with a host reference
// cipher — the independent oracle for the datapath's CTR path.
func refCTR(blk cipher.Block, iv, src []byte) []byte {
	dst := make([]byte, len(src))
	var c, ks [16]byte
	copy(c[:], iv)
	for off := 0; off < len(src); off += 16 {
		blk.Encrypt(ks[:], c[:])
		incCounter(&c)
		n := len(src) - off
		if n > 16 {
			n = 16
		}
		for j := 0; j < n; j++ {
			dst[off+j] = src[off+j] ^ ks[j]
		}
	}
	return dst
}

func TestCTRRoundTripAgainstHostReference(t *testing.T) {
	refs := map[Algorithm]func() (cipher.Block, error){
		RC6:      func() (cipher.Block, error) { return cipher.NewRC6(key) },
		Rijndael: func() (cipher.Block, error) { return cipher.NewRijndael(key) },
		Serpent:  func() (cipher.Block, error) { return cipher.NewSerpentCOBRA(key) },
	}
	iv := unhex(t, "0102030405060708090a0b0c0d0e0f10")
	pt := make([]byte, 16*9)
	for i := range pt {
		pt[i] = byte(i * 7)
	}
	for alg, mk := range refs {
		d, err := Configure(alg, key, Config{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		ct, err := d.EncryptCTR(context.Background(), iv, pt)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		ref, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if want := refCTR(ref, iv, pt); !bytes.Equal(ct, want) {
			t.Errorf("%s: CTR = %x, want %x", alg, ct, want)
		}
		back, err := d.DecryptCTR(context.Background(), iv, ct)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !bytes.Equal(back, pt) {
			t.Errorf("%s: DecryptCTR(EncryptCTR(x)) != x", alg)
		}
	}
}

func TestCTRPartialFinalBlock(t *testing.T) {
	d, err := Configure(Rijndael, key, Config{Unroll: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cipher.NewRijndael(key)
	if err != nil {
		t.Fatal(err)
	}
	iv := bytes.Repeat([]byte{0x42}, 16)
	for _, n := range []int{1, 15, 17, 33} {
		pt := bytes.Repeat([]byte{0x5a}, n)
		ct, err := d.EncryptCTR(context.Background(), iv, pt)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if want := refCTR(ref, iv, pt); !bytes.Equal(ct, want) {
			t.Errorf("n=%d: CTR = %x, want %x", n, ct, want)
		}
	}
}

func TestCTRValidation(t *testing.T) {
	d, err := Configure(Rijndael, key, Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.EncryptCTR(context.Background(), []byte{1, 2, 3}, make([]byte, 16)); err == nil {
		t.Error("short iv accepted")
	}
	if _, err := d.EncryptCTRInto(context.Background(), make([]byte, 8), make([]byte, 16), make([]byte, 16)); err == nil {
		t.Error("short dst accepted")
	}
	if out, err := d.EncryptCTR(context.Background(), make([]byte, 16), nil); err != nil || len(out) != 0 {
		t.Errorf("empty src: out=%v err=%v", out, err)
	}
}

func TestAddCounter(t *testing.T) {
	iv := make([]byte, 16)
	iv[15] = 0xfe
	c, err := AddCounter(iv, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 0xfe + 3 carries into byte 14.
	if c[15] != 0x01 || c[14] != 0x01 {
		t.Errorf("AddCounter carry: got %x", c)
	}
	// AddCounter(iv, n) must agree with n single increments.
	var inc [16]byte
	copy(inc[:], iv)
	for i := 0; i < 300; i++ {
		incCounter(&inc)
	}
	c, err = AddCounter(iv, 300)
	if err != nil {
		t.Fatal(err)
	}
	if c != inc {
		t.Errorf("AddCounter(300) = %x, want %x", c, inc)
	}
	// Wraparound at 2^128.
	all := bytes.Repeat([]byte{0xff}, 16)
	c, err = AddCounter(all, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != [16]byte{} {
		t.Errorf("AddCounter wrap = %x, want zeros", c)
	}
	if _, err := AddCounter(all[:5], 1); err == nil {
		t.Error("short iv accepted")
	}
}

// TestCBCMatchesBlockAtATimeECB pins the one-block reuse path in
// EncryptCBC to the definition of the mode (XOR-then-ECB per block).
func TestCBCMatchesBlockAtATimeECB(t *testing.T) {
	for _, alg := range []Algorithm{RC6, Rijndael, Serpent} {
		d, err := Configure(alg, key, Config{})
		if err != nil {
			t.Fatal(err)
		}
		iv := bytes.Repeat([]byte{0x17}, 16)
		pt := bytes.Repeat([]byte{0xc3, 0x99}, 40)
		got, err := d.EncryptCBC(context.Background(), iv, pt)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, len(pt))
		prev := iv
		blk := make([]byte, 16)
		for i := 0; i < len(pt); i += 16 {
			for j := 0; j < 16; j++ {
				blk[j] = pt[i+j] ^ prev[j]
			}
			ct, err := d.EncryptECB(context.Background(), blk)
			if err != nil {
				t.Fatal(err)
			}
			copy(want[i:], ct)
			prev = want[i : i+16]
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: CBC differs from block-at-a-time ECB reference", alg)
		}
	}
}
