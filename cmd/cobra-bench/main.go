// Command cobra-bench regenerates the paper's evaluation artifacts: every
// table (1–6) and the architecture figures, from literature data, the
// census, the cycle-accurate simulator and the timing/area models.
//
// Usage:
//
//	cobra-bench                  # everything
//	cobra-bench -table 3        # one table
//	cobra-bench -table 3 -compare  # paper-vs-measured columns
//	cobra-bench -figure 1       # architecture topology
//	cobra-bench -batch 128      # batch size for the Table 3/6 sweep
//	cobra-bench -json           # measured tables as JSON (for tooling)
//	cobra-bench -fastpath       # trace-compiled executor vs interpreter
//	cobra-bench -fastpath -json # ...archived in the JSON report
//	cobra-bench -farm           # mixed-tenant scheduler study (affinity vs round-robin)
//	cobra-bench -farm -json     # ...as BENCH_farm.json
//	cobra-bench -farm -farm-baseline BENCH_farm.json  # CI regression gate
//	cobra-bench -metrics-dump   # Prometheus counter dump after the run
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cobra/internal/bench"
	"cobra/internal/datapath"
	"cobra/internal/obs"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-6); 0 = all")
	ablation := flag.Bool("ablation", false, "run the pipeline-fill batch-size study instead of tables")
	window := flag.Bool("window", false, "run the §3.4 instruction-window study instead of tables")
	feedback := flag.Bool("feedback", false, "run the NFB-vs-FB mode study instead of tables")
	figure := flag.Int("figure", 0, "render a figure (1 or 2) instead of tables")
	compare := flag.Bool("compare", false, "print paper-vs-measured comparison for table 3")
	batch := flag.Int("batch", 64, "blocks per measurement")
	keyHex := flag.String("key", strings.Repeat("00", 16), "key (hex)")
	rows := flag.Int("rows", 4, "geometry rows for table 5")
	jsonOut := flag.Bool("json", false, "emit the measured table metrics as JSON instead of text")
	fastpath := flag.Bool("fastpath", false, "measure the trace-compiled executor against the interpreter")
	farmStudy := flag.Bool("farm", false, "run the mixed-tenant farm scheduler study (affinity vs round-robin)")
	farmBaseline := flag.String("farm-baseline", "", "archived -farm -json report to gate against (30% Mbps tolerance); requires -farm")
	farmWorkers := flag.String("farm-workers", "1,2,4,8,16", "comma-separated pool widths for the -farm study")
	metricsDump := flag.Bool("metrics-dump", false, "write a Prometheus text dump of all counters to stderr after the run")
	flag.Parse()

	if *metricsDump {
		bench.Metrics = obs.Default
		// Dump goes to stderr so -json output on stdout stays parseable.
		defer func() {
			if err := obs.Default.WritePrometheus(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "cobra-bench: metrics dump:", err)
			}
		}()
	}

	key, err := hex.DecodeString(*keyHex)
	if err != nil {
		fatal(fmt.Errorf("bad -key: %v", err))
	}

	if *farmStudy {
		var workers []int
		for _, part := range strings.Split(*farmWorkers, ",") {
			n, perr := strconv.Atoi(strings.TrimSpace(part))
			if perr != nil || n < 1 {
				fatal(fmt.Errorf("bad -farm-workers entry %q", part))
			}
			workers = append(workers, n)
		}
		rep, err := bench.FarmSweep(key, workers)
		if err != nil {
			fatal(err)
		}
		if *farmBaseline != "" {
			raw, err := os.ReadFile(*farmBaseline)
			if err != nil {
				fatal(err)
			}
			var base bench.FarmReport
			if err := json.Unmarshal(raw, &base); err != nil {
				fatal(fmt.Errorf("parse %s: %v", *farmBaseline, err))
			}
			if regs := bench.FarmCompare(rep, &base, 0.30); len(regs) != 0 {
				for _, r := range regs {
					fmt.Fprintln(os.Stderr, "cobra-bench: farm regression:", r)
				}
				os.Exit(1)
			}
		}
		if *jsonOut {
			out, err := bench.FarmReportJSON(rep)
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(out))
		} else {
			fmt.Println(bench.FarmSweepText(rep))
		}
		return
	}

	if *feedback {
		text, err := bench.FeedbackSweepText(key)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
		return
	}

	if *window {
		text, err := bench.WindowSweepText(key)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
		return
	}

	if *ablation {
		text, err := bench.BatchSweepText(key)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
		return
	}

	if *figure != 0 {
		var text string
		switch *figure {
		case 1:
			text, err = bench.Figure1Text(bench.Config{Alg: "rijndael", Rounds: 2}, key)
		case 2, 3:
			text, err = bench.Figure23Text(bench.Config{Alg: "rc6", Rounds: 2}, key)
		default:
			err = fmt.Errorf("no figure %d", *figure)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
		return
	}

	var fms []bench.FastpathMeasurement
	if *fastpath {
		fms, err = bench.MeasureFastpathAll(key, *batch)
		if err != nil {
			fatal(err)
		}
		if !*jsonOut {
			fmt.Println(bench.FastpathTableText(fms))
			return
		}
	}

	needMeasurements := *table == 0 || *table == 3 || *table == 6 || *jsonOut
	var ms []bench.Measurement
	if needMeasurements {
		ms, err = bench.MeasureAll(key, *batch)
		if err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		out, err := bench.ReportJSON(ms, fms, *batch)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	show := func(n int) bool { return *table == 0 || *table == n }
	if show(1) {
		fmt.Println(bench.Table1Text())
	}
	if show(2) {
		fmt.Println(bench.Table2Text())
	}
	if show(3) {
		fmt.Println(bench.Table3Text(ms))
		if *compare {
			fmt.Println(bench.Table3CompareText(ms))
		}
		fmt.Println(bench.ATMText(ms))
	}
	if show(4) {
		fmt.Println(bench.Table4Text())
	}
	if show(5) {
		fmt.Println(bench.Table5Text(datapath.Geometry{Rows: *rows}))
	}
	if show(6) {
		fmt.Println(bench.Table6Text(ms))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cobra-bench:", err)
	os.Exit(1)
}
