// Package client is the Go client for the cobrad wire protocol
// (package cobra/internal/serve): a thin, synchronous session handle
// used by cmd/cobra-cli, the rewired vpn-gateway example, and the serve
// test suite's soak clients.
//
// A Client is one tenant session: Dial performs the HELLO version
// handshake, Configure pins a (program, key) backend on the server, and
// Encrypt/Decrypt/Stats issue one request each. A Client is not safe
// for concurrent use — the protocol is strictly request/response per
// connection; open one Client per goroutine (they are cheap, and the
// server shares configured backends across sessions).
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"cobra/internal/serve"
)

// Config names a tenant's cipher configuration, mirroring the wire
// CONFIGURE request.
type Config struct {
	Tenant string // tenant label for the server's metrics ("" = "default")
	Alg    string // "rc6", "rijndael", "serpent"
	Key    []byte
	Unroll int // unroll depth (0: full unroll)
}

// Client is one session with a cobrad server.
type Client struct {
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	hello serve.HelloAck
	err   error // sticky transport/protocol failure
}

// Dial connects to a cobrad server and performs the HELLO handshake.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext is Dial bounded by ctx (connection establishment and the
// handshake round trip).
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	resp, err := c.roundTrip(serve.Frame{
		Type:    serve.FrameHello,
		Payload: serve.Hello{MinVersion: serve.Version, MaxVersion: serve.Version}.Encode(),
	})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	c.hello, err = serve.DecodeHelloAck(resp.Payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	return c, nil
}

// Hello returns the server's handshake parameters (negotiated version,
// frame-size ceiling, backend kind and width).
func (c *Client) Hello() serve.HelloAck { return c.hello }

// Close tears the session down; the server releases the pinned backend
// back to its LRU.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip writes one request frame and reads the response. An ERROR
// response decodes to *serve.WireError (test with serve.IsBusy /
// serve.IsDraining); any transport or framing failure is sticky and
// poisons the session.
func (c *Client) roundTrip(req serve.Frame) (serve.Frame, error) {
	if c.err != nil {
		return serve.Frame{}, c.err
	}
	fail := func(err error) (serve.Frame, error) {
		c.err = err
		return serve.Frame{}, err
	}
	if err := serve.WriteFrame(c.bw, req); err != nil {
		return fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return fail(err)
	}
	resp, err := serve.ReadFrame(c.br, c.hello.MaxFrame)
	if err != nil {
		return fail(err)
	}
	if resp.Type == serve.FrameError {
		we, err := serve.DecodeError(resp.Payload)
		if err != nil {
			return fail(err)
		}
		// Application-level error: the session itself stays usable
		// (unless the server hung up, which the next round trip reports).
		return serve.Frame{}, we
	}
	if resp.Type != req.Type {
		return fail(fmt.Errorf("client: server answered %v to %v", resp.Type, req.Type))
	}
	return resp, nil
}

// Configure pins a cipher configuration for this session and returns
// the server's description of the backing device or farm. Reconfiguring
// an existing session is allowed (the previous backend is released).
// A full backend cache reports BUSY (serve.IsBusy).
func (c *Client) Configure(cfg Config) (serve.ConfigureAck, error) {
	req := serve.ConfigureReq{
		Tenant: cfg.Tenant,
		Alg:    cfg.Alg,
		Key:    cfg.Key,
		Unroll: uint16(cfg.Unroll),
	}
	resp, err := c.roundTrip(serve.Frame{Type: serve.FrameConfigure, Payload: req.Encode()})
	if err != nil {
		return serve.ConfigureAck{}, err
	}
	ack, err := serve.DecodeConfigureAck(resp.Payload)
	if err != nil {
		c.err = err
		return serve.ConfigureAck{}, err
	}
	return ack, nil
}

// Encrypt runs one encryption request. iv must be empty for ECB and 16
// bytes for CBC/CTR; data must be a positive multiple of 16 bytes for
// ECB/CBC. Admission-control rejection reports BUSY (serve.IsBusy) —
// the session survives it, so callers back off and retry.
func (c *Client) Encrypt(mode serve.Mode, iv, data []byte) ([]byte, error) {
	return c.cipher(serve.FrameEncrypt, mode, iv, data)
}

// Decrypt runs one decryption request. CTR decrypts on any backend;
// ECB/CBC decryption needs a device backend (a farm answers
// CodeUnsupported).
func (c *Client) Decrypt(mode serve.Mode, iv, data []byte) ([]byte, error) {
	return c.cipher(serve.FrameDecrypt, mode, iv, data)
}

func (c *Client) cipher(t serve.FrameType, mode serve.Mode, iv, data []byte) ([]byte, error) {
	req := serve.CipherReq{Mode: mode, IV: iv, Data: data}
	resp, err := c.roundTrip(serve.Frame{Type: t, Payload: req.Encode()})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// Stats fetches the per-tenant counters and the pinned backend's
// performance summary.
func (c *Client) Stats() (serve.StatsReply, error) {
	resp, err := c.roundTrip(serve.Frame{Type: serve.FrameStats})
	if err != nil {
		return serve.StatsReply{}, err
	}
	var reply serve.StatsReply
	if err := json.Unmarshal(resp.Payload, &reply); err != nil {
		c.err = err
		return serve.StatsReply{}, err
	}
	return reply, nil
}
