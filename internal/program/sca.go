package program

import (
	"cobra/internal/dataflow"
	"cobra/internal/sca"
)

// CheckConstantTime runs the static side-channel analysis of package sca
// over the program: the microcode profile (where key/plaintext taint
// reaches table indices, eRAM address lanes, and control decisions), the
// compiled fastpath's profile when the program compiles, and the
// differential between the two. Programs that refuse to compile (key-
// request handshakes) get a microcode-only report with FastpathSkip set.
func (p *Program) CheckConstantTime() *sca.Report {
	mc := sca.AnalyzeMicrocode(p.Name, p.Instrs, dataflow.Config{Rows: p.Geometry.Rows, Window: p.Window})
	ex, err := p.Compile()
	if err != nil {
		return sca.BuildReport(p.Name, mc, nil, err.Error())
	}
	return sca.BuildReport(p.Name, mc, sca.AnalyzeTrace(ex.Trace()), "")
}
