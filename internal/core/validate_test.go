package core

import (
	"bytes"
	"context"
	"testing"
)

// TestValidateGateKeepsFastpath pins the Config.Validate gate on the happy
// path: a proven trace stays installed, the device encrypts on the
// fastpath, and reconfiguration carries the gate through (both the
// same-geometry reload and the rebuild path re-validate the new trace).
func TestValidateGateKeepsFastpath(t *testing.T) {
	d, err := Configure(RC6, key, Config{Unroll: 1, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !d.UsesFastpath() {
		t.Fatalf("proven trace was not installed: %v", d.FastpathErr())
	}
	pt := bytes.Repeat([]byte{0x3c}, 64)
	ct, err := d.EncryptECB(context.Background(), pt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := d.DecryptECB(context.Background(), ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Error("decrypt(encrypt(x)) != x under the validation gate")
	}

	if err := d.Reconfigure(Serpent, key, Config{Unroll: 1, Validate: true}); err != nil {
		t.Fatal(err)
	}
	if !d.validate {
		t.Error("Reconfigure dropped the validation gate")
	}
	if !d.UsesFastpath() {
		t.Fatalf("proven trace was not installed after Reconfigure: %v", d.FastpathErr())
	}
}

// TestValidateGateOffByDefault pins that the gate is opt-in: the zero
// Config never pays for validation (the field simply stays false).
func TestValidateGateOffByDefault(t *testing.T) {
	d, err := Configure(RC6, key, Config{Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.validate {
		t.Error("validation gate enabled by the zero Config")
	}
	if !d.UsesFastpath() {
		t.Fatalf("fastpath missing: %v", d.FastpathErr())
	}
}
