package equiv

import (
	"testing"

	"cobra/internal/bits"
)

// TestCanonicalLaws pins the arena's rewrite laws two ways, independent of
// any program: both sides of each law must intern to the SAME node (the
// canonicalization the validator's xid comparisons rely on), and the built
// expression must evaluate to the law's concrete model on random inputs
// (so no rewrite is a canonicalization that changes the function).
func TestCanonicalLaws(t *testing.T) {
	type law struct {
		name     string
		lhs, rhs func(a *Arena, x, y, z xid) xid
		model    func(x, y, z uint32) uint32 // nil: law has no single model
	}
	laws := []law{
		{"xor commutative",
			func(a *Arena, x, y, z xid) xid { return a.Xor(x, y) },
			func(a *Arena, x, y, z xid) xid { return a.Xor(y, x) },
			func(x, y, z uint32) uint32 { return x ^ y }},
		{"xor associative",
			func(a *Arena, x, y, z xid) xid { return a.Xor(a.Xor(x, y), z) },
			func(a *Arena, x, y, z xid) xid { return a.Xor(x, a.Xor(y, z)) },
			func(x, y, z uint32) uint32 { return x ^ y ^ z }},
		{"double-xor cancels",
			func(a *Arena, x, y, z xid) xid { return a.Xor(a.Xor(x, y), y) },
			func(a *Arena, x, y, z xid) xid { return x },
			func(x, y, z uint32) uint32 { return x }},
		{"self-xor is zero",
			func(a *Arena, x, y, z xid) xid { return a.Xor(x, x) },
			func(a *Arena, x, y, z xid) xid { return a.Const(0) },
			func(x, y, z uint32) uint32 { return 0 }},
		{"xor constant folding",
			func(a *Arena, x, y, z xid) xid { return a.Xor(a.Xor(x, a.Const(0x5a5a)), a.Const(0xa5a5)) },
			func(a *Arena, x, y, z xid) xid { return a.Xor(x, a.Const(0xffff)) },
			func(x, y, z uint32) uint32 { return x ^ 0xffff }},
		{"and commutative",
			func(a *Arena, x, y, z xid) xid { return a.And(x, y) },
			func(a *Arena, x, y, z xid) xid { return a.And(y, x) },
			func(x, y, z uint32) uint32 { return x & y }},
		{"and idempotent",
			func(a *Arena, x, y, z xid) xid { return a.And(x, x) },
			func(a *Arena, x, y, z xid) xid { return x },
			func(x, y, z uint32) uint32 { return x }},
		{"and zero annihilates",
			func(a *Arena, x, y, z xid) xid { return a.And(x, a.Const(0)) },
			func(a *Arena, x, y, z xid) xid { return a.Const(0) },
			func(x, y, z uint32) uint32 { return 0 }},
		{"or commutative",
			func(a *Arena, x, y, z xid) xid { return a.Or(x, y) },
			func(a *Arena, x, y, z xid) xid { return a.Or(y, x) },
			func(x, y, z uint32) uint32 { return x | y }},
		{"or idempotent",
			func(a *Arena, x, y, z xid) xid { return a.Or(x, x) },
			func(a *Arena, x, y, z xid) xid { return x },
			func(x, y, z uint32) uint32 { return x }},
		{"add commutative w32",
			func(a *Arena, x, y, z xid) xid { return a.Add(x, y, bits.W32) },
			func(a *Arena, x, y, z xid) xid { return a.Add(y, x, bits.W32) },
			func(x, y, z uint32) uint32 { return x + y }},
		{"add associative w16",
			func(a *Arena, x, y, z xid) xid { return a.Add(a.Add(x, y, bits.W16), z, bits.W16) },
			func(a *Arena, x, y, z xid) xid { return a.Add(x, a.Add(y, z, bits.W16), bits.W16) },
			func(x, y, z uint32) uint32 { return bits.AddMod(bits.AddMod(x, y, bits.W16), z, bits.W16) }},
		{"mul commutative",
			func(a *Arena, x, y, z xid) xid { return a.Mul(x, y, bits.W32) },
			func(a *Arena, x, y, z xid) xid { return a.Mul(y, x, bits.W32) },
			func(x, y, z uint32) uint32 { return x * y }},
		{"mul identity",
			func(a *Arena, x, y, z xid) xid { return a.Mul(x, a.Const(1), bits.W32) },
			func(a *Arena, x, y, z xid) xid { return x },
			func(x, y, z uint32) uint32 { return x }},
		{"sub of constant is negated add",
			func(a *Arena, x, y, z xid) xid { return a.Sub(x, a.Const(7), bits.W32) },
			func(a *Arena, x, y, z xid) xid { return a.Add(x, a.Const(^uint32(7)+1), bits.W32) },
			func(x, y, z uint32) uint32 { return x - 7 }},
		{"sub self is zero",
			func(a *Arena, x, y, z xid) xid { return a.Sub(x, x, bits.W16) },
			func(a *Arena, x, y, z xid) xid { return a.Const(0) },
			func(x, y, z uint32) uint32 { return 0 }},
		{"rotate composition",
			func(a *Arena, x, y, z xid) xid { return a.Rotl(a.Rotl(x, 13), 25) },
			func(a *Arena, x, y, z xid) xid { return a.Rotl(x, (13+25)%32) },
			func(x, y, z uint32) uint32 { return bits.RotL(x, 6) }},
		{"full rotation is identity",
			func(a *Arena, x, y, z xid) xid { return a.Rotl(a.Rotl(x, 20), 12) },
			func(a *Arena, x, y, z xid) xid { return x },
			func(x, y, z uint32) uint32 { return x }},
		{"zero rotation is identity",
			func(a *Arena, x, y, z xid) xid { return a.Rotl(x, 0) },
			func(a *Arena, x, y, z xid) xid { return x },
			func(x, y, z uint32) uint32 { return x }},
		{"shift composition",
			func(a *Arena, x, y, z xid) xid { return a.Shl(a.Shl(x, 3), 4) },
			func(a *Arena, x, y, z xid) xid { return a.Shl(x, 7) },
			func(x, y, z uint32) uint32 { return x << 7 }},
		{"shift saturates at 32",
			func(a *Arena, x, y, z xid) xid { return a.Shl(a.Shl(x, 20), 12) },
			func(a *Arena, x, y, z xid) xid { return a.Const(0) },
			func(x, y, z uint32) uint32 { return 0 }},
		{"shr composition",
			func(a *Arena, x, y, z xid) xid { return a.Shr(a.Shr(x, 5), 6) },
			func(a *Arena, x, y, z xid) xid { return a.Shr(x, 11) },
			func(x, y, z uint32) uint32 { return x >> 11 }},
		{"constant variable rotate reduces to immediate",
			func(a *Arena, x, y, z xid) xid { return a.RotlVar(x, a.Const(40), false) },
			func(a *Arena, x, y, z xid) xid { return a.Rotl(x, 8) },
			func(x, y, z uint32) uint32 { return bits.RotL(x, 8) }},
		{"negated constant variable rotate",
			func(a *Arena, x, y, z xid) xid { return a.RotlVar(x, a.Const(5), true) },
			func(a *Arena, x, y, z xid) xid { return a.Rotl(x, 27) },
			func(x, y, z uint32) uint32 { return bits.RotL(x, 27) }},
		{"pack of own bytes is identity",
			func(a *Arena, x, y, z xid) xid {
				return a.Pack4([4]xid{a.Byte(x, 0), a.Byte(x, 1), a.Byte(x, 2), a.Byte(x, 3)})
			},
			func(a *Arena, x, y, z xid) xid { return x },
			func(x, y, z uint32) uint32 { return x }},
		{"byte of pack extracts",
			func(a *Arena, x, y, z xid) xid {
				return a.Byte(a.Pack4([4]xid{a.Byte(y, 0), a.Byte(x, 1), a.Byte(y, 2), a.Byte(y, 3)}), 1)
			},
			func(a *Arena, x, y, z xid) xid { return a.Byte(x, 1) },
			func(x, y, z uint32) uint32 { return (x >> 8) & 0xff }},
		{"degenerate MDS column is lane mode",
			func(a *Arena, x, y, z xid) xid { return a.GF(x, gfMDS, [4]uint8{3, 0, 0, 0}) },
			func(a *Arena, x, y, z xid) xid { return a.GF(x, gfLanes, [4]uint8{3, 3, 3, 3}) },
			func(x, y, z uint32) uint32 { return evalGF(gfLanes, [4]uint8{3, 3, 3, 3}, x) }},
		{"all-ones lane GF is identity",
			func(a *Arena, x, y, z xid) xid { return a.GF(x, gfLanes, [4]uint8{1, 1, 1, 1}) },
			func(a *Arena, x, y, z xid) xid { return x },
			func(x, y, z uint32) uint32 { return x }},
	}

	for _, l := range laws {
		t.Run(l.name, func(t *testing.T) {
			a := NewArena()
			x, y, z := a.Input(0, 0), a.Input(0, 1), a.Input(0, 2)
			le, re := l.lhs(a, x, y, z), l.rhs(a, x, y, z)
			if le != re {
				t.Fatalf("sides intern to different nodes:\n  lhs: %s\n  rhs: %s", a.String(le), a.String(re))
			}
			if l.model == nil {
				return
			}
			ev := newEvaluator(a)
			for _, env := range witnessCandidates(1) {
				ev.reset(env)
				if got, want := ev.eval(le), l.model(env[0][0], env[0][1], env[0][2]); got != want {
					t.Fatalf("env %v: built expression evaluates to %#08x, model says %#08x\n  expr: %s",
						env, got, want, a.String(le))
				}
			}
		})
	}
}

// TestHashConsing pins the arena's core invariant: structurally equal
// expressions, built along different construction orders, are the same
// node — equal xids are what the validator's output comparisons mean.
func TestHashConsing(t *testing.T) {
	a := NewArena()
	x, y := a.Input(0, 0), a.Input(0, 1)
	e1 := a.Add(a.Rotl(a.Xor(x, y), 3), a.Const(0x9e3779b9), bits.W32)
	e2 := a.Add(a.Const(0x9e3779b9), a.Rotl(a.Xor(y, x), 3), bits.W32)
	if e1 != e2 {
		t.Fatalf("same expression interned twice: %s vs %s", a.String(e1), a.String(e2))
	}
	if a.Input(0, 0) != x || a.Const(0x9e3779b9) == a.Const(0x9e3779b8) {
		t.Fatal("atom interning broken")
	}
}

// TestSubstRebuilds pins subst: replacing variables with concrete
// expressions must renormalize through the public constructors, so a
// variable-kept identity collapses once the variable is substituted.
func TestSubstRebuilds(t *testing.T) {
	a := NewArena()
	x := a.Input(0, 0)
	v := a.Var(0)
	// (x ^ v) stays symbolic while v is opaque...
	e := a.Xor(x, v)
	if cv, ok := a.isConst(e); ok {
		t.Fatalf("x^v folded prematurely to %#x", cv)
	}
	// ...and cancels to a constant once v turns out to be x itself.
	got := a.subst(e, map[uint32]xid{0: x}, make(map[xid]xid))
	if got != a.Const(0) {
		t.Fatalf("subst(x^v, v:=x) = %s, want 0", a.String(got))
	}
	// A rotate chain rebuilt through the constructor recomposes.
	e2 := a.Rotl(v, 10)
	got2 := a.subst(e2, map[uint32]xid{0: a.Rotl(x, 22)}, make(map[xid]xid))
	if got2 != x {
		t.Fatalf("subst((v<<<10), v:=x<<<22) = %s, want x", a.String(got2))
	}
}
