package vet

import (
	"encoding/json"
	"io"
)

// Machine-readable findings: the shared encoder behind cobra-vet -json and
// cobra-lint -json. One JSONReport per (program, check) pair keeps CI
// artifact consumers from re-parsing the human-oriented text output.

// JSONFinding is one diagnostic in the machine-readable schema. Microcode
// findings carry Addr/Line; Go-source findings (cobra-lint) carry
// File/SrcLine/SrcCol instead.
type JSONFinding struct {
	Severity string `json:"severity"`
	Code     string `json:"code"`
	Msg      string `json:"msg"`
	Addr     *int   `json:"addr,omitempty"`
	Line     string `json:"line,omitempty"`
	File     string `json:"file,omitempty"`
	SrcLine  int    `json:"srcLine,omitempty"`
	SrcCol   int    `json:"srcCol,omitempty"`
}

// NewJSONFinding converts a microcode finding.
func NewJSONFinding(f Finding) JSONFinding {
	addr := f.Addr
	return JSONFinding{
		Severity: f.Sev.String(),
		Code:     f.Code,
		Msg:      f.Msg,
		Addr:     &addr,
		Line:     f.Line,
	}
}

// JSONReport is every finding one check produced for one subject.
type JSONReport struct {
	// Name is the program name or file path checked.
	Name string `json:"name"`
	// Check names the producing analysis: "vet", "dataflow", "equiv",
	// "ct", "build", or "lint".
	Check string `json:"check"`
	// Clean is the check's verdict; a check can be dirty with zero findings
	// (an equiv proof failure carries its synthesized finding, but a build
	// failure's message may be the whole story).
	Clean    bool          `json:"clean"`
	Findings []JSONFinding `json:"findings"`
}

// NewJSONReport builds a report from microcode findings; Clean follows
// len(findings) == 0.
func NewJSONReport(name, check string, fs []Finding) JSONReport {
	r := JSONReport{Name: name, Check: check, Clean: len(fs) == 0, Findings: []JSONFinding{}}
	for _, f := range fs {
		r.Findings = append(r.Findings, NewJSONFinding(f))
	}
	return r
}

// WriteJSON emits the reports as one indented JSON document.
func WriteJSON(w io.Writer, reports []JSONReport) error {
	if reports == nil {
		reports = []JSONReport{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
