// Command cobra-census prints the §3 block-cipher study: the 41 analyzed
// ciphers, the Table 2 atomic-operation occurrence counts, and the derived
// COBRA element requirements.
//
// Usage:
//
//	cobra-census            # Table 2 + requirements
//	cobra-census -ciphers   # per-cipher operation matrix
//	cobra-census -op "Variable Rotation"   # which ciphers use an operation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"cobra/internal/census"
)

func main() {
	listCiphers := flag.Bool("ciphers", false, "print the per-cipher operation matrix")
	opName := flag.String("op", "", "list ciphers using the named operation")
	flag.Parse()

	if *opName != "" {
		for _, o := range census.Ops() {
			if strings.EqualFold(o.Name(), *opName) {
				for _, n := range census.Supporting(o) {
					fmt.Println(n)
				}
				return
			}
		}
		fmt.Fprintf(os.Stderr, "cobra-census: unknown operation %q\n", *opName)
		os.Exit(1)
	}

	if *listCiphers {
		w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
		fmt.Fprint(w, "Cipher\tBlock")
		ops := census.Ops()
		for _, o := range ops {
			fmt.Fprintf(w, "\t%s", shortName(o))
		}
		fmt.Fprintln(w)
		for _, c := range census.Studied() {
			fmt.Fprintf(w, "%s\t%d", c.Name, c.BlockBits)
			for _, o := range ops {
				mark := ""
				if c.Uses(o) {
					mark = "x"
				}
				fmt.Fprintf(w, "\t%s", mark)
			}
			fmt.Fprintln(w)
		}
		w.Flush()
		return
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Table 2: Occurrence of block cipher atomic operations")
	fmt.Fprintln(w, "Operation\tOccurrences\tCOBRA element")
	reqs := census.Requirements()
	for i, r := range census.Table2() {
		el := reqs[i].Element
		if el == "" {
			el = "(unsupported by design)"
		}
		fmt.Fprintf(w, "%s\t%d of %d\t%s\n", r.Name, r.Occurrences, r.Total, el)
	}
	w.Flush()
	sizes := census.BlockSizes()
	fmt.Printf("\nStudy scope: %d ciphers (%d with 64-bit blocks, %d with 128-bit blocks)\n",
		len(census.Studied()), sizes[64], sizes[128])
}

// shortName abbreviates operation names for the matrix header.
func shortName(o census.Op) string {
	switch o {
	case census.OpBoolean:
		return "Bool"
	case census.OpModAddSub:
		return "Add"
	case census.OpFixedShift:
		return "Shift"
	case census.OpVarRotate:
		return "VRot"
	case census.OpModMult:
		return "Mul"
	case census.OpGFMult:
		return "GF"
	case census.OpModInv:
		return "Inv"
	case census.OpLUT:
		return "LUT"
	}
	return "?"
}
