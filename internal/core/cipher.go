// The unified cipher API: one interface served by a single device and by
// a multi-device farm, so applications scale from one simulated COBRA
// part to a pool by swapping a constructor.
package core

import (
	"context"

	"cobra/internal/sim"
)

// Cipher is the backend-independent encryption surface. Both *core.Device
// (one COBRA chip) and *farm.Farm (a device pool) satisfy it, so callers
// written against Cipher swap between single-device and farm execution
// without code changes; the compile-time assertions live here and in
// package farm, and the behavioral swap test in farm's cipher_test.go.
//
// Signature convention (the API-redesign decision, documented here): the
// interface adopts the farm's context-taking signatures and the Device
// was migrated to match, rather than giving the farm context-free
// wrappers. Cancellation is a production requirement — a farm must stop
// sharding when the caller gives up — and a context-free interface would
// silently discard it for the scalable backend; the single device instead
// checks the context between bulk batches and chained blocks, where a
// simulated workload can actually be abandoned.
//
// Feedback modes are part of the surface: a farm serves EncryptCBC by
// serializing the whole message onto one worker (the Table 1 FB-column
// penalty made operational), so mode coverage does not depend on the
// backend.
type Cipher interface {
	// Algorithm returns the configured algorithm.
	Algorithm() Algorithm
	// BlockSize returns the cipher block size in bytes.
	BlockSize() int
	// EncryptECB encrypts src (a multiple of BlockSize) in
	// electronic-codebook mode.
	EncryptECB(ctx context.Context, src []byte) ([]byte, error)
	// EncryptCBC encrypts src in cipher-block-chaining mode under a
	// 16-byte IV (a feedback mode: serialized on every backend).
	EncryptCBC(ctx context.Context, iv, src []byte) ([]byte, error)
	// EncryptCTR encrypts src in counter mode with initial counter block
	// iv; src may end in a partial block.
	EncryptCTR(ctx context.Context, iv, src []byte) ([]byte, error)
	// DecryptCTR inverts EncryptCTR (counter mode is an involution).
	DecryptCTR(ctx context.Context, iv, src []byte) ([]byte, error)
	// DecryptECB inverts EncryptECB on the decryption datapath. Like ECB
	// encryption it is a non-feedback direction (Table 1), so a farm
	// shards it across the pool.
	DecryptECB(ctx context.Context, src []byte) ([]byte, error)
	// DecryptCBC inverts EncryptCBC. Unlike CBC *encryption*, CBC
	// decryption is embarrassingly parallel — P[k] = D(C[k]) xor C[k-1]
	// needs only the previous *ciphertext* block, which the caller
	// already holds — so a farm shards it too, with shard boundaries
	// overlapping the ciphertext by one block.
	DecryptCBC(ctx context.Context, iv, src []byte) ([]byte, error)
	// Summary returns the backend-independent performance view, derived
	// from the backend's obs registry. The richer backend-specific
	// reports remain available as Device.Report and Farm.Report, both of
	// which embed Summary.
	Summary() Summary
	// ResetStats zeroes the performance counters between measurement
	// phases. Safe to call while requests are in flight (the reset is a
	// snapshot of atomic counters; exported /metrics series stay
	// monotonic).
	ResetStats()
}

// Summary is the shared report core: every field has a stable snake_case
// JSON tag, pinned by golden tests in core and farm, and the same
// quantities back the /metrics counter families — one bookkeeping path
// from the simulator to every output format.
type Summary struct {
	Algorithm Algorithm `json:"algorithm"`
	// Backend identifies the implementation ("device" or "farm").
	Backend string `json:"backend"`
	// Workers is the parallel width (1 for a single device).
	Workers int `json:"workers"`
	// Unroll is the configured unroll depth (Table 3's "Rnds").
	Unroll int `json:"unroll"`
	// Rows is the array geometry in rows.
	Rows int `json:"rows"`
	// Stats aggregates the simulator counters of every bulk encryption
	// since configuration or the last ResetStats, across all workers and
	// both execution engines.
	Stats sim.Stats `json:"stats"`
	// CyclesPerBlock is Stats.Cycles/Stats.BlocksOut (0 before traffic).
	CyclesPerBlock float64 `json:"cycles_per_block"`
	// DatapathMHz is the modeled datapath clock.
	DatapathMHz float64 `json:"datapath_mhz"`
	// ThroughputMbps is the modeled aggregate throughput: per-device
	// Table 3 rate for a device, simulated wall-clock rate for a farm.
	ThroughputMbps float64 `json:"throughput_mbps"`
}

// Device satisfies the unified API (farm.Farm's twin assertion lives in
// package farm, which core cannot import).
var _ Cipher = (*Device)(nil)
