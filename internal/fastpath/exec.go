package fastpath

import (
	"cobra/internal/bits"
	"cobra/internal/datapath"
	"cobra/internal/isa"
	"cobra/internal/sim"
)

// runSeg replays a compiled cycle segment from index start: the executor's
// inner loop. Each cycle's attributed counters are accumulated into acc, so
// the total matches the interpreter's delta for the same stretch. The
// segment stops immediately after the cycle that emits the want-th output —
// exactly where the interpreter's run would stop — and returns the index
// one past the last executed cycle (len(ticks) when it ran to the end).
// Stall cycles only move counters; enabled cycles move one 128-bit vector
// down the array exactly as datapath.Tick would, but with every
// configuration decision pre-resolved.
//
//cobra:hotpath
func (e *Exec) runSeg(ticks []cTick, start int, in []bits.Block128, inPos *int, dst []bits.Block128, want int, outPos *int, acc *sim.Stats) int {
	for t := start; t < len(ticks); t++ {
		ct := &ticks[t]
		acc.Add(ct.stats)
		if !ct.enabled {
			continue
		}
		var vec bits.Block128
		switch ct.inMode {
		case isa.InExternal:
			vec = in[*inPos]
			*inPos++
		case isa.InFeedback:
			vec = e.fb
		default:
			vec = ct.eramVec
		}
		if ct.anyWhite {
			for c := 0; c < datapath.Cols; c++ {
				vec[c] = ct.whiteIn[c].apply(vec[c])
			}
		}

		prev := vec
		for r := range ct.rows {
			row := &ct.rows[r]
			if row.shuffle != nil {
				vec = shuffleBytes(vec, row.shuffle)
			}
			rowIn := vec
			var out bits.Block128
			regRow := &e.reg[r]
			for c := 0; c < datapath.Cols; c++ {
				cell := &row.cells[c]
				if cell.passthrough {
					out[c] = vec[c]
					continue
				}
				if cell.regOnly {
					out[c] = regRow[c]
					continue
				}
				var x uint32
				if cell.insel < 4 {
					x = vec[cell.insel]
				} else {
					x = prev[cell.insel-4]
				}
				x = evalSteps(cell.steps, x, &vec)
				if cell.reg {
					// In-place swap is safe: regRow[c] is read only by this
					// cell within the cycle.
					out[c] = regRow[c]
					regRow[c] = x
				} else {
					out[c] = x
				}
			}
			vec = out
			prev = rowIn
		}

		if ct.anyWhite {
			for c := 0; c < datapath.Cols; c++ {
				vec[c] = ct.whiteOut[c].apply(vec[c])
			}
		}
		e.fb = vec
		if ct.emit {
			dst[*outPos] = vec
			*outPos++
			if *outPos == want {
				return t + 1
			}
		}
	}
	return len(ticks)
}

// evalSteps runs one RCE's compiled element chain.
//
//cobra:hotpath
func evalSteps(steps []step, x uint32, vec *bits.Block128) uint32 {
	for i := range steps {
		st := &steps[i]
		switch st.kind {
		case stXorImm:
			x ^= st.imm
		case stXorBlk:
			x ^= preShift(vec[st.src], st.aux, st.flag)
		case stAddImm:
			x = bits.AddMod(x, st.imm, bits.Width(st.aux))
		case stAddBlk:
			x = bits.AddMod(x, vec[st.src], bits.Width(st.aux))
		case stRotlImm:
			x = bits.RotL(x, uint(st.aux))
		case stRotlVar:
			x = bits.RotL(x, varAmt(vec[st.src], st.flag))
		case stShlImm:
			x = bits.Shl(x, uint(st.aux))
		case stShrImm:
			x = bits.Shr(x, uint(st.aux))
		case stShlVar:
			x = bits.Shl(x, varAmt(vec[st.src], st.flag))
		case stShrVar:
			x = bits.Shr(x, varAmt(vec[st.src], st.flag))
		case stAndImm:
			x &= st.imm
		case stAndBlk:
			x &= preShift(vec[st.src], st.aux, st.flag)
		case stOrImm:
			x |= st.imm
		case stOrBlk:
			x |= preShift(vec[st.src], st.aux, st.flag)
		case stSubImm:
			x = bits.SubMod(x, st.imm, bits.Width(st.aux))
		case stSubBlk:
			x = bits.SubMod(x, vec[st.src], bits.Width(st.aux))
		case stS8:
			t := &st.lut.S8
			x = uint32(t[0][uint8(x)]) |
				uint32(t[1][uint8(x>>8)])<<8 |
				uint32(t[2][uint8(x>>16)])<<16 |
				uint32(t[3][uint8(x>>24)])<<24
		case stS4:
			base := uint32(st.aux) * 16
			t := &st.lut.S4
			var out uint32
			for lane := 0; lane < 8; lane++ {
				n := x >> (4 * uint(lane)) & 0xf
				out |= uint32(t[lane/2][base+n]&0xf) << (4 * uint(lane))
			}
			x = out
		case stS8to32:
			b := uint8(x >> (8 * uint(st.aux)))
			t := &st.lut.S8
			x = uint32(t[0][b]) | uint32(t[1][b])<<8 | uint32(t[2][b])<<16 | uint32(t[3][b])<<24
		case stMulImm:
			x = bits.MulMod(x, st.imm, bits.Width(st.aux))
		case stMulBlk:
			x = bits.MulMod(x, vec[st.src], bits.Width(st.aux))
		case stSquare:
			x = bits.SquareMod32(x)
		case stGFTab:
			t := st.gf
			x = t[0][x&0xff] ^ t[1][x>>8&0xff] ^ t[2][x>>16&0xff] ^ t[3][x>>24]
		}
	}
	return x
}

// varAmt extracts a data-dependent shift amount: the low five bits of the
// selected block, negated mod 32 when the E element's Neg stage is active.
//
//cobra:hotpath
func varAmt(v uint32, neg bool) uint {
	amt := uint(v & 31)
	if neg {
		amt = (32 - amt) & 31
	}
	return amt
}

// preShift applies an A element's fixed operand pre-shift.
//
//cobra:hotpath
func preShift(v uint32, amt uint8, rot bool) uint32 {
	if amt == 0 {
		return v
	}
	if rot {
		return bits.RotL(v, uint(amt))
	}
	return bits.Shl(v, uint(amt))
}

// shuffleBytes permutes the 16 bytes of the stream through a compiled
// shuffler permutation (perm[dst] = src byte index).
//
//cobra:hotpath
func shuffleBytes(v bits.Block128, perm *[16]uint8) bits.Block128 {
	var out bits.Block128
	for dst := 0; dst < 16; dst++ {
		b := uint8(v[perm[dst]>>2] >> (8 * uint(perm[dst]&3)))
		out[dst>>2] |= uint32(b) << (8 * uint(dst&3))
	}
	return out
}
