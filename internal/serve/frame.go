// Package serve is the network face of the COBRA reproduction: a TCP
// daemon (cmd/cobrad) that exposes the unified core.Cipher surface to
// remote clients over a length-prefixed binary framing protocol. The
// paper's premise is algorithm-agile crypto as a shared *resource* — one
// reconfigurable part many workloads time-share by swapping microcode,
// not by swapping silicon (§1) — and serve operationalizes exactly that
// deployment shape: each connection is a tenant session that pins a
// (program, key) configuration, a capacity-bounded LRU of configured
// backends lets tenants reuse compiled fastpath traces instead of paying
// reconfiguration per request, and admission control sheds load with a
// typed BUSY error when the farm's queues back up.
//
// This file is the wire layer. Every frame is an 8-byte header followed
// by a payload:
//
//	byte  0     type     (FrameHello .. FrameError)
//	byte  1     flags    (must be 0 in protocol version 1)
//	bytes 2-3   reserved (must be 0)
//	bytes 4-7   payload length, big-endian uint32
//
// Payload encodings are strict: fixed field order, length-prefixed
// byte strings, and no trailing bytes — so decode(encode(x)) == x is a
// fixed point, pinned by FuzzFrameRoundTrip. The same frame types carry
// requests and responses (a CONFIGURE request is answered by a CONFIGURE
// acknowledgement, an ENCRYPT request by an ENCRYPT frame holding the
// ciphertext); failures of any kind come back as an ERROR frame with a
// stable numeric code.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// FrameType identifies a frame's meaning. The same type tags a request
// and its successful response.
type FrameType uint8

// The protocol frames.
const (
	// FrameHello opens a session: the client sends its supported version
	// range, the server answers with the negotiated version and its
	// limits. Any other frame first is a sequence error.
	FrameHello FrameType = 1
	// FrameConfigure pins the session's tenant configuration: algorithm,
	// key, unroll depth and tenant label. The response acknowledges with
	// the configured backend's shape.
	FrameConfigure FrameType = 2
	// FrameEncrypt carries a bulk encryption request (mode + optional IV
	// + plaintext); the response frame carries the raw ciphertext.
	FrameEncrypt FrameType = 3
	// FrameDecrypt is FrameEncrypt's inverse direction.
	FrameDecrypt FrameType = 4
	// FrameStats requests the session's accounting; the response payload
	// is JSON (StatsReply).
	FrameStats FrameType = 5
	// FrameError is any failure response: a stable numeric code plus a
	// human-readable message.
	FrameError FrameType = 6

	frameTypeMax = uint8(FrameError)
)

// String names the frame type for logs and errors.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameConfigure:
		return "configure"
	case FrameEncrypt:
		return "encrypt"
	case FrameDecrypt:
		return "decrypt"
	case FrameStats:
		return "stats"
	case FrameError:
		return "error"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Version is the protocol version this package implements. HELLO
// negotiation picks the highest version inside both sides' ranges;
// today that is 1 or nothing.
const Version uint16 = 1

// DefaultMaxFrame is the default payload-size ceiling (1 MiB). The
// server advertises its limit in the HELLO acknowledgement; frames
// above the limit are rejected before their payload is read.
const DefaultMaxFrame = 1 << 20

// AbsMaxFrame caps any configured frame limit (16 MiB): the framing
// reads length-then-payload, so the limit bounds per-connection memory.
const AbsMaxFrame = 1 << 24

// helloMagic opens every HELLO payload, so a server can reject a
// non-protocol peer on the first frame.
var helloMagic = [4]byte{'C', 'B', 'R', 'A'}

// headerSize is the fixed frame-header length.
const headerSize = 8

// Framing errors. ErrTooLarge is distinguished so servers can answer
// with CodeTooLarge before hanging up; all other malformations are
// ErrMalformed (wrapped with detail).
var (
	ErrMalformed = errors.New("serve: malformed frame")
	ErrTooLarge  = errors.New("serve: frame exceeds size limit")
)

// Frame is one decoded wire frame.
type Frame struct {
	Type    FrameType
	Payload []byte
}

// AppendFrame appends f's wire encoding to dst and returns the extended
// slice — the allocation-free core of WriteFrame.
func AppendFrame(dst []byte, f Frame) []byte {
	var hdr [headerSize]byte
	hdr[0] = uint8(f.Type)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(f.Payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > AbsMaxFrame {
		return ErrTooLarge
	}
	var hdr [headerSize]byte
	hdr[0] = uint8(f.Type)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// ReadFrame reads one frame from r, enforcing maxPayload (0 selects
// DefaultMaxFrame). Header violations — unknown type, nonzero flags or
// reserved bytes — return ErrMalformed-wrapped errors; an oversized
// length returns ErrTooLarge without reading the payload.
func ReadFrame(r io.Reader, maxPayload uint32) (Frame, error) {
	if maxPayload == 0 {
		maxPayload = DefaultMaxFrame
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	if hdr[0] == 0 || hdr[0] > frameTypeMax {
		return Frame{}, fmt.Errorf("%w: unknown frame type %d", ErrMalformed, hdr[0])
	}
	if hdr[1] != 0 {
		return Frame{}, fmt.Errorf("%w: nonzero flags 0x%02x", ErrMalformed, hdr[1])
	}
	if hdr[2] != 0 || hdr[3] != 0 {
		return Frame{}, fmt.Errorf("%w: nonzero reserved bytes", ErrMalformed)
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > maxPayload {
		return Frame{}, fmt.Errorf("%w: payload %d > limit %d", ErrTooLarge, n, maxPayload)
	}
	f := Frame{Type: FrameType(hdr[0])}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// Error codes carried by FrameError payloads. The values are wire
// protocol — stable across releases.
const (
	// CodeMalformed: the peer's frame or payload failed to decode.
	CodeMalformed uint16 = 1
	// CodeVersion: HELLO version ranges do not overlap.
	CodeVersion uint16 = 2
	// CodeUnsupported: a valid request the configured backend cannot
	// serve (e.g. DECRYPT ecb on a farm backend).
	CodeUnsupported uint16 = 3
	// CodeSequence: frames out of order (missing HELLO or CONFIGURE).
	CodeSequence uint16 = 4
	// CodeBadRequest: semantically invalid request (unknown algorithm,
	// bad key size, wrong IV length, ragged block length).
	CodeBadRequest uint16 = 5
	// CodeBusy: admission control shed the request — the backend's
	// queues are full. The session stays open; the client should back
	// off and retry.
	CodeBusy uint16 = 6
	// CodeDraining: the server is shutting down gracefully; no further
	// requests will be accepted on this connection.
	CodeDraining uint16 = 7
	// CodeInternal: the backend failed unexpectedly.
	CodeInternal uint16 = 8
	// CodeTooLarge: the request frame exceeded the advertised limit.
	CodeTooLarge uint16 = 9
)

// codeNames maps error codes to the stable snake_case names used in
// metrics labels and messages.
var codeNames = map[uint16]string{
	CodeMalformed:   "malformed",
	CodeVersion:     "version",
	CodeUnsupported: "unsupported",
	CodeSequence:    "sequence",
	CodeBadRequest:  "bad_request",
	CodeBusy:        "busy",
	CodeDraining:    "draining",
	CodeInternal:    "internal",
	CodeTooLarge:    "too_large",
}

// CodeName returns the stable name of a wire error code.
func CodeName(code uint16) string {
	if n, ok := codeNames[code]; ok {
		return n
	}
	return fmt.Sprintf("code_%d", code)
}

// WireError is a decoded FrameError — the typed error the client
// library returns so callers can branch on Code (retry on CodeBusy,
// reconnect elsewhere on CodeDraining).
type WireError struct {
	Code uint16
	Msg  string
}

// Error satisfies the error interface.
func (e *WireError) Error() string {
	return fmt.Sprintf("serve: %s: %s", CodeName(e.Code), e.Msg)
}

// IsBusy reports whether err is a WireError carrying CodeBusy — the
// retryable admission-control shed.
func IsBusy(err error) bool {
	var we *WireError
	return errors.As(err, &we) && we.Code == CodeBusy
}

// IsDraining reports whether err is a WireError carrying CodeDraining.
func IsDraining(err error) bool {
	var we *WireError
	return errors.As(err, &we) && we.Code == CodeDraining
}

// Mode selects the mode of operation of one ENCRYPT/DECRYPT request.
type Mode uint8

// The wire modes.
const (
	ModeECB Mode = 0
	ModeCBC Mode = 1
	ModeCTR Mode = 2
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeECB:
		return "ecb"
	case ModeCBC:
		return "cbc"
	case ModeCTR:
		return "ctr"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode parses a mode name ("ecb", "cbc", "ctr").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "ecb":
		return ModeECB, nil
	case "cbc":
		return ModeCBC, nil
	case "ctr":
		return ModeCTR, nil
	}
	return 0, fmt.Errorf("serve: unknown mode %q", s)
}

// ---- payload codecs -------------------------------------------------
//
// A tiny strict cursor pair: writers append fixed-width big-endian
// integers and length-prefixed byte strings; readers consume the same
// and fail on truncation, overlength prefixes, or trailing bytes.

type reader struct {
	b   []byte
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = fmt.Errorf("%w: truncated payload", ErrMalformed)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 2 {
		r.err = fmt.Errorf("%w: truncated payload", ErrMalformed)
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.err = fmt.Errorf("%w: truncated payload", ErrMalformed)
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

// bytes16 reads a u16-length-prefixed byte string.
func (r *reader) bytes16() []byte {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("%w: byte string overruns payload", ErrMalformed)
		return nil
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v
}

// bytes32 reads a u32-length-prefixed byte string.
func (r *reader) bytes32() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < uint64(n) {
		r.err = fmt.Errorf("%w: byte string overruns payload", ErrMalformed)
		return nil
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) string16() string { return string(r.bytes16()) }

// done fails unless the payload was consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.b))
	}
	return nil
}

func putU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func putU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

func putBytes16(b, v []byte) []byte {
	b = putU16(b, uint16(len(v)))
	return append(b, v...)
}

func putBytes32(b, v []byte) []byte {
	b = putU32(b, uint32(len(v)))
	return append(b, v...)
}

// Hello is the client's opening frame: magic plus the [MinVersion,
// MaxVersion] range it speaks.
type Hello struct {
	MinVersion uint16
	MaxVersion uint16
}

// Encode renders the payload.
func (h Hello) Encode() []byte {
	b := append([]byte(nil), helloMagic[:]...)
	b = putU16(b, h.MinVersion)
	return putU16(b, h.MaxVersion)
}

// DecodeHello parses a HELLO payload.
func DecodeHello(p []byte) (Hello, error) {
	r := reader{b: p}
	var magic [4]byte
	magic[0], magic[1], magic[2], magic[3] = r.u8(), r.u8(), r.u8(), r.u8()
	h := Hello{MinVersion: r.u16(), MaxVersion: r.u16()}
	if err := r.done(); err != nil {
		return Hello{}, err
	}
	if magic != helloMagic {
		return Hello{}, fmt.Errorf("%w: bad hello magic %q", ErrMalformed, magic[:])
	}
	if h.MinVersion > h.MaxVersion {
		return Hello{}, fmt.Errorf("%w: inverted version range %d..%d", ErrMalformed, h.MinVersion, h.MaxVersion)
	}
	return h, nil
}

// HelloAck is the server's HELLO response: the negotiated version and
// the server's advertised shape and limits.
type HelloAck struct {
	Version  uint16
	MaxFrame uint32
	// Backend is the server's backend kind ("device" or "farm").
	Backend string
	// Workers is the per-backend parallel width (1 for device).
	Workers uint16
}

// Encode renders the payload.
func (h HelloAck) Encode() []byte {
	b := append([]byte(nil), helloMagic[:]...)
	b = putU16(b, h.Version)
	b = putU32(b, h.MaxFrame)
	b = putBytes16(b, []byte(h.Backend))
	return putU16(b, h.Workers)
}

// DecodeHelloAck parses a server HELLO payload.
func DecodeHelloAck(p []byte) (HelloAck, error) {
	r := reader{b: p}
	var magic [4]byte
	magic[0], magic[1], magic[2], magic[3] = r.u8(), r.u8(), r.u8(), r.u8()
	h := HelloAck{Version: r.u16(), MaxFrame: r.u32(), Backend: r.string16(), Workers: r.u16()}
	if err := r.done(); err != nil {
		return HelloAck{}, err
	}
	if magic != helloMagic {
		return HelloAck{}, fmt.Errorf("%w: bad hello magic %q", ErrMalformed, magic[:])
	}
	return h, nil
}

// ConfigureReq pins a session's tenant configuration.
type ConfigureReq struct {
	// Tenant labels the session's metric series; [a-zA-Z0-9._-], at
	// most MaxTenantLen bytes.
	Tenant string
	// Alg names the algorithm ("rc6", "rijndael", "serpent").
	Alg string
	// Key is the raw key (length validated by the cipher).
	Key []byte
	// Unroll is the requested unroll depth; 0 selects the full unroll.
	Unroll uint16
}

// MaxTenantLen bounds tenant label length on the wire.
const MaxTenantLen = 64

// Encode renders the payload.
func (c ConfigureReq) Encode() []byte {
	b := putBytes16(nil, []byte(c.Tenant))
	b = putBytes16(b, []byte(c.Alg))
	b = putBytes16(b, c.Key)
	return putU16(b, c.Unroll)
}

// DecodeConfigureReq parses a CONFIGURE request payload.
func DecodeConfigureReq(p []byte) (ConfigureReq, error) {
	r := reader{b: p}
	c := ConfigureReq{Tenant: r.string16(), Alg: r.string16()}
	c.Key = append([]byte(nil), r.bytes16()...)
	c.Unroll = r.u16()
	if err := r.done(); err != nil {
		return ConfigureReq{}, err
	}
	if len(c.Tenant) > MaxTenantLen {
		return ConfigureReq{}, fmt.Errorf("%w: tenant label longer than %d bytes", ErrMalformed, MaxTenantLen)
	}
	for i := 0; i < len(c.Tenant); i++ {
		ch := c.Tenant[i]
		ok := ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' ||
			ch >= '0' && ch <= '9' || ch == '.' || ch == '_' || ch == '-'
		if !ok {
			return ConfigureReq{}, fmt.Errorf("%w: tenant label byte %q", ErrMalformed, ch)
		}
	}
	return c, nil
}

// ConfigureAck acknowledges a CONFIGURE with the backend's shape.
type ConfigureAck struct {
	// Backend is "device" or "farm".
	Backend string
	// Workers is the backend's parallel width.
	Workers uint16
	// Rows/Unroll are the configured array geometry (Table 3 shape).
	Rows   uint16
	Unroll uint16
	// Fastpath reports whether bulk requests run on the trace-compiled
	// executor.
	Fastpath bool
	// CacheHit reports whether the configuration reused an
	// already-configured backend from the server's LRU (no
	// reconfiguration was paid).
	CacheHit bool
}

// Encode renders the payload.
func (c ConfigureAck) Encode() []byte {
	b := putBytes16(nil, []byte(c.Backend))
	b = putU16(b, c.Workers)
	b = putU16(b, c.Rows)
	b = putU16(b, c.Unroll)
	b = append(b, boolByte(c.Fastpath), boolByte(c.CacheHit))
	return b
}

// DecodeConfigureAck parses a CONFIGURE acknowledgement payload.
func DecodeConfigureAck(p []byte) (ConfigureAck, error) {
	r := reader{b: p}
	c := ConfigureAck{Backend: r.string16(), Workers: r.u16(), Rows: r.u16(), Unroll: r.u16()}
	fp, hit := r.u8(), r.u8()
	if err := r.done(); err != nil {
		return ConfigureAck{}, err
	}
	if fp > 1 || hit > 1 {
		return ConfigureAck{}, fmt.Errorf("%w: non-boolean flag byte", ErrMalformed)
	}
	c.Fastpath, c.CacheHit = fp == 1, hit == 1
	return c, nil
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// CipherReq is the shared ENCRYPT/DECRYPT request payload: a mode, an
// IV for the chained/counter modes, and the data. The response payload
// is the raw transformed bytes with no further structure.
type CipherReq struct {
	Mode Mode
	// IV must be empty for ECB and exactly 16 bytes otherwise.
	IV   []byte
	Data []byte
}

// Encode renders the payload.
func (c CipherReq) Encode() []byte {
	b := []byte{uint8(c.Mode)}
	b = putBytes16(b, c.IV)
	return putBytes32(b, c.Data)
}

// DecodeCipherReq parses an ENCRYPT/DECRYPT request payload.
func DecodeCipherReq(p []byte) (CipherReq, error) {
	r := reader{b: p}
	c := CipherReq{Mode: Mode(r.u8())}
	c.IV = append([]byte(nil), r.bytes16()...)
	c.Data = append([]byte(nil), r.bytes32()...)
	if err := r.done(); err != nil {
		return CipherReq{}, err
	}
	if c.Mode > ModeCTR {
		return CipherReq{}, fmt.Errorf("%w: unknown mode %d", ErrMalformed, uint8(c.Mode))
	}
	switch c.Mode {
	case ModeECB:
		if len(c.IV) != 0 {
			return CipherReq{}, fmt.Errorf("%w: ecb carries no IV", ErrMalformed)
		}
	default:
		if len(c.IV) != 16 {
			return CipherReq{}, fmt.Errorf("%w: %s IV must be 16 bytes, got %d", ErrMalformed, c.Mode, len(c.IV))
		}
	}
	return c, nil
}

// EncodeError renders an ERROR payload.
func EncodeError(code uint16, msg string) []byte {
	b := putU16(nil, code)
	return putBytes16(b, []byte(msg))
}

// DecodeError parses an ERROR payload.
func DecodeError(p []byte) (*WireError, error) {
	r := reader{b: p}
	e := &WireError{Code: r.u16(), Msg: r.string16()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return e, nil
}
