package datapath

import (
	"strings"
	"testing"
	"testing/quick"

	"cobra/internal/bits"
	"cobra/internal/isa"
)

func newArray(t *testing.T) *Array {
	t.Helper()
	a, err := New(BaseGeometry())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		rows int
		ok   bool
	}{
		{4, true}, {2, true}, {8, true}, {40, true}, {128, true}, {256, true},
		{0, false}, {1, false}, {3, false}, {5, false}, {258, false},
	}
	for _, c := range cases {
		err := (Geometry{Rows: c.rows}).Validate()
		if (err == nil) != c.ok {
			t.Errorf("rows=%d: err=%v, want ok=%v", c.rows, err, c.ok)
		}
	}
}

func TestGeometryShufflers(t *testing.T) {
	if got := (Geometry{Rows: 4}).Shufflers(); got != 2 {
		t.Errorf("base geometry shufflers = %d, want 2", got)
	}
	if got := (Geometry{Rows: 40}).Shufflers(); got != 20 {
		t.Errorf("40-row shufflers = %d, want 20", got)
	}
}

func TestMulColumns(t *testing.T) {
	// All RCEs in columns 1 and 3 have the multiplier (§3.1).
	a := newArray(t)
	for r := 0; r < 4; r++ {
		for c := 0; c < Cols; c++ {
			want := c == 1 || c == 3
			if got := a.RCE(r, c).HasMul; got != want {
				t.Errorf("RCE(%d,%d).HasMul = %v, want %v", r, c, got, want)
			}
		}
	}
}

func TestIdentityPassThrough(t *testing.T) {
	a := newArray(t)
	in := bits.Block128{1, 2, 3, 4}
	res := a.Tick(TickInput{External: in, HaveExternal: true})
	if !res.Advanced || !res.ConsumedExternal {
		t.Fatalf("tick did not advance: %+v", res)
	}
	if res.Output != in {
		t.Errorf("identity output = %v, want %v", res.Output, in)
	}
}

func TestExternalModeStallsWithoutInput(t *testing.T) {
	a := newArray(t)
	res := a.Tick(TickInput{})
	if res.Advanced {
		t.Error("tick advanced without external input")
	}
}

func TestGlobalDisableStalls(t *testing.T) {
	a := newArray(t)
	if err := a.SetOutEnable(isa.SliceAll(), false); err != nil {
		t.Fatal(err)
	}
	res := a.Tick(TickInput{External: bits.Block128{1}, HaveExternal: true})
	if res.Advanced {
		t.Error("tick advanced while globally disabled")
	}
	if err := a.SetOutEnable(isa.SliceAll(), true); err != nil {
		t.Fatal(err)
	}
	if res := a.Tick(TickInput{External: bits.Block128{1}, HaveExternal: true}); !res.Advanced {
		t.Error("tick did not advance after re-enable")
	}
}

func TestSecondaryMapping(t *testing.T) {
	// §3.1: secondary blocks grouped in ascending numerical order.
	want := map[int][3]int{
		0: {1, 2, 3},
		1: {0, 2, 3},
		2: {0, 1, 3},
		3: {0, 1, 2},
	}
	for c, w := range want {
		for k := 0; k < 3; k++ {
			if got := secondary(c, k); got != w[k] {
				t.Errorf("secondary(%d,%d) = %d, want %d", c, k, got, w[k])
			}
		}
	}
}

func TestSecondaryInputsReachElements(t *testing.T) {
	// Column 0 XORs with INB (block 1), INC (block 2), IND (block 3) in
	// turn; verify each sees the right block.
	for k, src := range []isa.Src{isa.SrcINB, isa.SrcINC, isa.SrcIND} {
		a := newArray(t)
		cfg := isa.ACfg{Op: isa.AXor, Operand: src}
		if err := a.ApplyElem(isa.SliceAt(0, 0), isa.ElemA1, cfg.Encode()); err != nil {
			t.Fatal(err)
		}
		in := bits.Block128{0, 10, 20, 30}
		res := a.Tick(TickInput{External: in, HaveExternal: true})
		want := in[k+1]
		if res.Output[0] != want {
			t.Errorf("src %v: col0 out = %d, want %d", src, res.Output[0], want)
		}
	}
}

func TestERAMReadReachesINER(t *testing.T) {
	a := newArray(t)
	a.WriteERAM(2, 1, 77, 0xcafebabe)
	if err := a.ApplyElem(isa.SliceAt(0, 2), isa.ElemER,
		isa.ERCfg{Bank: 1, Addr: 77}.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := a.ApplyElem(isa.SliceAt(0, 2), isa.ElemA1,
		isa.ACfg{Op: isa.AXor, Operand: isa.SrcINER}.Encode()); err != nil {
		t.Fatal(err)
	}
	res := a.Tick(TickInput{External: bits.Block128{}, HaveExternal: true})
	if res.Output[2] != 0xcafebabe {
		t.Errorf("INER did not reach element: out = %#x", res.Output[2])
	}
}

func TestFeedbackMode(t *testing.T) {
	a := newArray(t)
	// Column 0 increments by 1 each pass.
	if err := a.ApplyElem(isa.SliceAt(0, 0), isa.ElemB,
		isa.BCfg{Mode: isa.BAdd, Width: 2, Operand: isa.SrcImm, Imm: 1}.Encode()); err != nil {
		t.Fatal(err)
	}
	// Seed with an external block, then loop.
	a.Tick(TickInput{External: bits.Block128{100, 0, 0, 0}, HaveExternal: true})
	a.SetInMux(isa.InMuxCfg{Mode: isa.InFeedback})
	for i := 0; i < 5; i++ {
		res := a.Tick(TickInput{})
		if !res.Advanced {
			t.Fatal("feedback tick stalled")
		}
		if want := uint32(102 + i); res.Output[0] != want {
			t.Errorf("pass %d: out = %d, want %d", i, res.Output[0], want)
		}
	}
}

func TestByteShufflerPosition(t *testing.T) {
	// A shuffler sits before row 1: swap bytes 0 and 4 (block0 lsb with
	// block1 lsb) and check it happened between row 0 and row 1.
	a := newArray(t)
	perm := isa.ShufCfg{Perm: [8]uint8{4, 1, 2, 3, 0, 5, 6, 7}}
	if err := a.SetShuffler(0, perm); err != nil {
		t.Fatal(err)
	}
	in := bits.Block128{0x000000aa, 0x000000bb, 0, 0}
	res := a.Tick(TickInput{External: in, HaveExternal: true})
	if res.Output[0] != 0x000000bb || res.Output[1] != 0x000000aa {
		t.Errorf("shuffler swap failed: %v", res.Output)
	}
}

func TestShufflerIndexRange(t *testing.T) {
	a := newArray(t)
	if err := a.SetShuffler(2, isa.ShufCfg{}); err == nil {
		t.Error("expected error for shuffler index 2 on base geometry")
	}
	if err := a.SetShuffler(-1, isa.ShufCfg{}); err == nil {
		t.Error("expected error for negative shuffler index")
	}
}

func TestShufflerHighHalf(t *testing.T) {
	a := newArray(t)
	// Identity low half; high half reversed within itself.
	cfg := isa.ShufCfg{High: true, Perm: [8]uint8{15, 14, 13, 12, 11, 10, 9, 8}}
	if err := a.SetShuffler(0, cfg); err != nil {
		t.Fatal(err)
	}
	got := a.Shuffler(0)
	for i := 0; i < 8; i++ {
		if got[i] != uint8(i) {
			t.Errorf("low half disturbed at %d: %d", i, got[i])
		}
		if got[8+i] != uint8(15-i) {
			t.Errorf("high half at %d: %d, want %d", 8+i, got[8+i], 15-i)
		}
	}
}

func TestWhiteningXorAndAdd(t *testing.T) {
	a := newArray(t)
	a.SetWhitening(isa.WhiteCfg{Col: 0, Mode: isa.WhiteXor, Key: 0xff00ff00})
	a.SetWhitening(isa.WhiteCfg{Col: 1, Mode: isa.WhiteAdd, Key: 1})
	in := bits.Block128{0x0f0f0f0f, 0xffffffff, 5, 6}
	res := a.Tick(TickInput{External: in, HaveExternal: true})
	if res.Output[0] != 0x0f0f0f0f^0xff00ff00 {
		t.Errorf("whitening xor: %#x", res.Output[0])
	}
	if res.Output[1] != 0 {
		t.Errorf("whitening add wrap: %#x", res.Output[1])
	}
	if res.Output[2] != 5 || res.Output[3] != 6 {
		t.Error("whitening off columns disturbed")
	}
}

func TestRegisteredRCEDelaysOneCycle(t *testing.T) {
	a := newArray(t)
	if err := a.ApplyElem(isa.SliceAt(0, 0), isa.ElemReg,
		isa.RegCfg{Enabled: true}.Encode()); err != nil {
		t.Fatal(err)
	}
	r1 := a.Tick(TickInput{External: bits.Block128{111, 0, 0, 0}, HaveExternal: true})
	if r1.Output[0] != 0 {
		t.Errorf("cycle 1: registered value visible too early: %d", r1.Output[0])
	}
	r2 := a.Tick(TickInput{External: bits.Block128{222, 0, 0, 0}, HaveExternal: true})
	if r2.Output[0] != 111 {
		t.Errorf("cycle 2: out = %d, want 111", r2.Output[0])
	}
}

func TestPipelineFourStages(t *testing.T) {
	// Register every row in column 0: a 4-stage pipeline. Block i must
	// appear at the output on cycle i+4 (0-indexed input on cycle i).
	a := newArray(t)
	if err := a.ApplyElem(isa.SliceCol(0), isa.ElemReg,
		isa.RegCfg{Enabled: true}.Encode()); err != nil {
		t.Fatal(err)
	}
	var outs []uint32
	for i := 0; i < 10; i++ {
		res := a.Tick(TickInput{External: bits.Block128{uint32(1000 + i)}, HaveExternal: true})
		outs = append(outs, res.Output[0])
	}
	// After the 4-cycle fill, outputs follow inputs with latency 4.
	for i := 4; i < 10; i++ {
		if want := uint32(1000 + i - 4); outs[i] != want {
			t.Errorf("cycle %d: out = %d, want %d", i, outs[i], want)
		}
	}
}

func TestPerRCEHoldFreezesRegister(t *testing.T) {
	a := newArray(t)
	if err := a.ApplyElem(isa.SliceAt(0, 0), isa.ElemReg,
		isa.RegCfg{Enabled: true}.Encode()); err != nil {
		t.Fatal(err)
	}
	a.Tick(TickInput{External: bits.Block128{5}, HaveExternal: true})
	// Freeze the RCE: its register must keep presenting 5.
	if err := a.SetOutEnable(isa.SliceAt(0, 0), false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res := a.Tick(TickInput{External: bits.Block128{uint32(100 + i)}, HaveExternal: true})
		if res.Output[0] != 5 {
			t.Errorf("frozen register leaked: out = %d", res.Output[0])
		}
	}
}

func TestCaptureWritesOutputs(t *testing.T) {
	a := newArray(t)
	a.SetCapture(0, isa.CaptureCfg{Enabled: true, Bank: 3, Addr: 10})
	for i := 0; i < 4; i++ {
		a.Tick(TickInput{External: bits.Block128{uint32(i) * 7}, HaveExternal: true})
	}
	for i := 0; i < 4; i++ {
		if got := a.ReadERAM(0, 3, 10+i); got != uint32(i)*7 {
			t.Errorf("capture[%d] = %d, want %d", i, got, uint32(i)*7)
		}
	}
}

func TestERAMPlayback(t *testing.T) {
	a := newArray(t)
	for i := 0; i < 3; i++ {
		for c := 0; c < Cols; c++ {
			a.WriteERAM(c, 2, 20+i, uint32(c*100+i))
		}
	}
	a.SetInMux(isa.InMuxCfg{Mode: isa.InERAM, Bank: 2, Addr: 20})
	for i := 0; i < 3; i++ {
		res := a.Tick(TickInput{})
		for c := 0; c < Cols; c++ {
			if res.Output[c] != uint32(c*100+i) {
				t.Errorf("playback cycle %d col %d = %d", i, c, res.Output[c])
			}
		}
	}
}

func TestApplyElemScopeBroadcast(t *testing.T) {
	a := newArray(t)
	cfg := isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcImm, Amt: 1}
	if err := a.ApplyElem(isa.SliceAll(), isa.ElemE1, cfg.Encode()); err != nil {
		t.Fatal(err)
	}
	// Four rows each rotate by 1: total rotate by 4.
	in := bits.Block128{0x80000000, 1, 2, 3}
	res := a.Tick(TickInput{External: in, HaveExternal: true})
	if res.Output[0] != bits.RotL(0x80000000, 4) {
		t.Errorf("broadcast rot: %#x", res.Output[0])
	}
}

func TestApplyElemDBroadcastSkipsPlainColumns(t *testing.T) {
	a := newArray(t)
	cfg := isa.DCfg{Mode: isa.DSquare}
	if err := a.ApplyElem(isa.SliceRow(0), isa.ElemD, cfg.Encode()); err != nil {
		t.Errorf("row-scope D config should skip plain RCEs: %v", err)
	}
	// Direct single-RCE addressing still errors.
	if err := a.ApplyElem(isa.SliceAt(0, 0), isa.ElemD, cfg.Encode()); err == nil {
		t.Error("expected error configuring D at plain RCE")
	}
}

func TestApplyElemRowOutOfRange(t *testing.T) {
	a := newArray(t)
	if err := a.ApplyElem(isa.SliceAt(4, 0), isa.ElemE1, 0); err == nil {
		t.Error("expected error for row 4 on base geometry")
	}
	if err := a.ApplyElem(isa.SliceRow(9), isa.ElemE1, 0); err == nil {
		t.Error("expected error for row-scope out of range")
	}
}

func TestResetRestoresPowerUpState(t *testing.T) {
	a := newArray(t)
	a.SetWhitening(isa.WhiteCfg{Col: 0, Mode: isa.WhiteXor, Key: 9})
	a.SetInMux(isa.InMuxCfg{Mode: isa.InFeedback})
	a.SetCapture(1, isa.CaptureCfg{Enabled: true})
	if err := a.ApplyElem(isa.SliceAll(), isa.ElemE1,
		isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcImm, Amt: 3}.Encode()); err != nil {
		t.Fatal(err)
	}
	a.WriteERAM(0, 0, 0, 42)
	a.Reset()
	in := bits.Block128{7, 8, 9, 10}
	res := a.Tick(TickInput{External: in, HaveExternal: true})
	if res.Output != in {
		t.Errorf("after Reset, output = %v, want %v", res.Output, in)
	}
	if a.ReadERAM(0, 0, 0) != 42 {
		t.Error("Reset must preserve eRAM contents")
	}
}

func TestLoadLUTBroadcast(t *testing.T) {
	a := newArray(t)
	if err := a.LoadLUT(isa.SliceCol(1), isa.LUTAddr(false, 0, 0), 0x04030201); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if got := a.RCE(r, 1).LUT.S8[0][2]; got != 3 {
			t.Errorf("row %d LUT byte = %d, want 3", r, got)
		}
	}
}

func TestExpandedGeometry(t *testing.T) {
	a, err := New(Geometry{Rows: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := isa.ECfg{Mode: isa.ERotl, AmtSrc: isa.SrcImm, Amt: 1}
	if err := a.ApplyElem(isa.SliceAll(), isa.ElemE1, cfg.Encode()); err != nil {
		t.Fatal(err)
	}
	in := bits.Block128{0x00000001, 0, 0, 0}
	res := a.Tick(TickInput{External: in, HaveExternal: true})
	if res.Output[0] != 1<<8 {
		t.Errorf("8-row rotate chain: %#x, want %#x", res.Output[0], 1<<8)
	}
}

func TestDescribeRendersTopology(t *testing.T) {
	a := newArray(t)
	d := a.Describe()
	for _, sub := range []string{"4 rows", "byte shuffler 0", "byte shuffler 1",
		"RCE MUL", "whitening", "eRAMs"} {
		if !strings.Contains(d, sub) {
			t.Errorf("Describe missing %q:\n%s", sub, d)
		}
	}
}

func TestShufflerPermutationProperty(t *testing.T) {
	// Any permutation applied before row 1 must be a bijection on bytes.
	a := newArray(t)
	f := func(seed [16]uint8, raw [16]byte) bool {
		var perm [16]uint8
		used := [16]bool{}
		// Build a permutation from the seed (Fisher-Yates-ish selection).
		for i := 0; i < 16; i++ {
			j := int(seed[i]) % 16
			for used[j] {
				j = (j + 1) % 16
			}
			perm[i] = uint8(j)
			used[j] = true
		}
		a.Reset()
		var low, high isa.ShufCfg
		copy(low.Perm[:], perm[:8])
		high.High = true
		copy(high.Perm[:], perm[8:])
		if err := a.SetShuffler(0, low); err != nil {
			return false
		}
		if err := a.SetShuffler(0, high); err != nil {
			return false
		}
		in := bits.LoadBlock128(raw[:])
		res := a.Tick(TickInput{External: in, HaveExternal: true})
		for dst := 0; dst < 16; dst++ {
			if res.Output.Byte(dst) != in.Byte(int(perm[dst])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInputWhitening(t *testing.T) {
	a := newArray(t)
	a.SetWhitening(isa.WhiteCfg{Col: 0, Mode: isa.WhiteAdd, In: true, Key: 5})
	a.SetWhitening(isa.WhiteCfg{Col: 1, Mode: isa.WhiteXor, In: true, Key: 0xff})
	in := bits.Block128{10, 0x0f, 7, 8}
	res := a.Tick(TickInput{External: in, HaveExternal: true})
	if res.Output[0] != 15 {
		t.Errorf("input ADD whitening: %d, want 15", res.Output[0])
	}
	if res.Output[1] != 0xf0 {
		t.Errorf("input XOR whitening: %#x, want 0xf0", res.Output[1])
	}
	if res.Output[2] != 7 || res.Output[3] != 8 {
		t.Error("unconfigured columns disturbed")
	}
}

func TestInputAndOutputWhiteningIndependent(t *testing.T) {
	// The position bit selects exactly one placement per column register.
	a := newArray(t)
	a.SetWhitening(isa.WhiteCfg{Col: 0, Mode: isa.WhiteAdd, In: true, Key: 1})
	a.SetWhitening(isa.WhiteCfg{Col: 1, Mode: isa.WhiteAdd, In: false, Key: 1})
	in := bits.Block128{100, 100, 0, 0}
	res := a.Tick(TickInput{External: in, HaveExternal: true})
	if res.Output[0] != 101 || res.Output[1] != 101 {
		t.Errorf("whitening positions: %v", res.Output[:2])
	}
}

func TestInputWhiteningAppliesToFeedbackToo(t *testing.T) {
	// The whitening sits on the input path after the multiplexor, so
	// feedback passes are whitened as well — microcode must disable it
	// after the consuming pass (which the program builders do).
	a := newArray(t)
	a.SetWhitening(isa.WhiteCfg{Col: 0, Mode: isa.WhiteAdd, In: true, Key: 1})
	a.Tick(TickInput{External: bits.Block128{10}, HaveExternal: true})
	a.SetInMux(isa.InMuxCfg{Mode: isa.InFeedback})
	res := a.Tick(TickInput{})
	if res.Output[0] != 12 {
		t.Errorf("feedback whitening: %d, want 12", res.Output[0])
	}
}
