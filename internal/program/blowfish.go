package program

import (
	"fmt"

	"cobra/internal/cipher"
	"cobra/internal/isa"
)

// Blowfish on COBRA — the cipher family the C element's 8→32 mode was
// designed for (§3.2): each of the four key-dependent S-boxes is one RCE's
// four LUT banks, so the whole F function is four look-ups plus the B
// adders and A XORs. One 64-bit block occupies words 0,1 of a superblock
// (big-endian words byte-swapped at the host boundary; words 2,3 are
// scratch lanes that exit holding round intermediates, keeping every
// output word key- and plaintext-tainted). A round is four rows:
//
//	r0: l' = l ^ P[i] in col 0; r passes in col 1
//	r1: a = S0[l'>>24], b = S1[l'>>16]   (cols 0,1); cols 2,3 carry l', r
//	r2: a+b in col 0; c = S2[l'>>8], d = S3[l'&ff] (cols 2,3); col 1: r
//	r3: newL = ((a+b)^c)+d ^ r in col 0; newR = l' off the bypass in col 1
//
// The look-ups split across two rows because the four tables monopolise a
// row's RCEs while r and l' still need live lanes — the Prev bypass only
// spans one row. The last pass runs unswapped with P[17]/P[16] (P[0]/P[1]
// for decryption) applied as output whitening, mirroring the host's
// final-swap-undo. Table copies are per round stage, so the iRAM budget
// (4·1024 LUTLD words per stage) caps the unroll at two rounds.

// blowfishBankTables splits a 256×32 S-box into the C element's four 8→8
// byte-lane banks (bank k holds output byte k).
func blowfishBankTables(s *[256]uint32) [4][256]uint8 {
	var out [4][256]uint8
	for v := 0; v < 256; v++ {
		for k := 0; k < 4; k++ {
			out[k][v] = uint8(s[v] >> (8 * k))
		}
	}
	return out
}

// blowfishRoundRows emits one (swapped) Blowfish round at rows rt..rt+3.
func (b *builder) blowfishRoundRows(rt int) {
	// Row rt: l' = l ^ P[i]; r passes untouched in column 1.
	b.cfge(isa.SliceAt(rt, 0), isa.ElemA1, aCfg(isa.AXor, isa.SrcINER))

	// Row rt+1: the two high-byte look-ups; columns 2 and 3 keep l' and r
	// alive (the tables monopolise the row's C elements otherwise).
	b.cfge(isa.SliceAt(rt+1, 0), isa.ElemC,
		isa.CCfg{Mode: isa.CS8to32, ByteSel: 3}.Encode())
	b.insel(rt+1, 1, 1) // col1's INB = block 0 = l'
	b.cfge(isa.SliceAt(rt+1, 1), isa.ElemC,
		isa.CCfg{Mode: isa.CS8to32, ByteSel: 2}.Encode())
	b.insel(rt+1, 2, 1) // col2's INB = block 0 = l'
	b.insel(rt+1, 3, 2) // col3's INC = block 1 = r

	// Row rt+2: a+b in column 0; the two low-byte look-ups; r rides col 1.
	b.cfge(isa.SliceAt(rt+2, 0), isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcINB))
	b.insel(rt+2, 1, 3) // col1's IND = block 3 = r
	b.cfge(isa.SliceAt(rt+2, 2), isa.ElemC,
		isa.CCfg{Mode: isa.CS8to32, ByteSel: 1}.Encode())
	b.insel(rt+2, 3, 3) // col3's IND = block 2 = l'
	b.cfge(isa.SliceAt(rt+2, 3), isa.ElemC,
		isa.CCfg{Mode: isa.CS8to32, ByteSel: 0}.Encode())

	// Row rt+3: newL = (((a+b)^c)+d) ^ r in column 0 (the A1→B→A2 chain
	// matches F's fixed operator order); newR = l' off the bypass.
	s := isa.SliceAt(rt+3, 0)
	b.cfge(s, isa.ElemA1, aCfg(isa.AXor, isa.SrcINC)) // ^ c
	b.cfge(s, isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcIND))
	b.cfge(s, isa.ElemA2, aCfg(isa.AXor, isa.SrcINB)) // ^ r
	b.insel(rt+3, 1, 6)                               // PC: row rt+2's col-2 input = l'
}

// blowfishLastRoundToggle reconfigures the round at rows rt..rt+3 to run
// unswapped, emitting (l', newL, c, d) so the output lanes line up with
// the host's post-loop swap-undo. restore re-emits the swapped form.
func (b *builder) blowfishLastRoundToggle(rt int, restore bool) {
	s := isa.SliceAt(rt+3, 0)
	co := isa.SliceAt(rt+3, 1)
	if restore {
		b.insel(rt+3, 0, 0)
		b.cfge(s, isa.ElemA1, aCfg(isa.AXor, isa.SrcINC))
		b.cfge(s, isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcIND))
		b.cfge(s, isa.ElemA2, aCfg(isa.AXor, isa.SrcINB))
		b.insel(rt+3, 1, 6)
		b.cfge(co, isa.ElemA1, bypass)
		b.cfge(co, isa.ElemB, bypass)
		b.cfge(co, isa.ElemA2, bypass)
		return
	}
	// Column 0 passes l' from the bypass; column 1 computes newL with the
	// raw own-block port supplying r past the mid-chain elements.
	b.insel(rt+3, 0, 6) // PC = l'
	b.cfge(s, isa.ElemA1, bypass)
	b.cfge(s, isa.ElemB, bypass)
	b.cfge(s, isa.ElemA2, bypass)
	b.insel(rt+3, 1, 1) // col1's INB = block 0 = a+b
	b.cfge(co, isa.ElemA1, aCfg(isa.AXor, isa.SrcINC))
	b.cfge(co, isa.ElemB, bCfg(isa.BAdd, 2, isa.SrcIND))
	b.cfge(co, isa.ElemA2, aCfg(isa.AXor, isa.SrcINA)) // ^ r (raw block 1)
}

// buildBlowfish shares the two directions' skeleton: decryption is the
// same datapath walking the P-array backwards.
func buildBlowfish(key []byte, hw int, decrypt bool) (*Program, error) {
	ck, err := cipher.NewBlowfish(key)
	if err != nil {
		return nil, err
	}
	pa, sb := ck.Schedule()
	const rounds = 16

	geo, passes, err := validateUnroll("blowfish", hw, rounds, 4, 0)
	if err != nil {
		return nil, err
	}
	if hw > 2 {
		return nil, &ErrIRAMBudget{
			Name:      fmt.Sprintf("blowfish-%d", hw),
			What:      "per-stage S-box LUTLD copies",
			Needed:    hw * 4 * 4 * 64,
			Available: isa.IRAMWords,
		}
	}

	// Round subkeys and final whitening: P[0..15] then P[17],P[16] for
	// encryption; P[17..2] then P[0],P[1] for decryption.
	var sub [rounds]uint32
	var wh0, wh1 uint32
	for i := range sub {
		if decrypt {
			sub[i] = pa[17-i]
		} else {
			sub[i] = pa[i]
		}
	}
	if decrypt {
		wh0, wh1 = pa[0], pa[1]
	} else {
		wh0, wh1 = pa[17], pa[16]
	}

	name := fmt.Sprintf("blowfish-%d", hw)
	if decrypt {
		name = fmt.Sprintf("blowfish-dec-%d", hw)
	}
	p := &Program{
		Name:        name,
		Cipher:      "blowfish",
		HWRounds:    hw,
		TotalRounds: rounds,
		Geometry:    geo,
		Window:      1,
	}
	b := &builder{}
	b.disout()

	for st := 0; st < hw; st++ {
		b.blowfishRoundRows(4 * st)
		// Each stage's S-boxes: S0,S1 at rows 4st+1 cols 0,1; S2,S3 at
		// rows 4st+2 cols 2,3.
		for t := 0; t < 4; t++ {
			banks := blowfishBankTables(&sb[t])
			s := isa.SliceAt(4*st+1, t)
			if t >= 2 {
				s = isa.SliceAt(4*st+2, t)
			}
			for bank := 0; bank < 4; bank++ {
				b.loadS8(s, bank, &banks[bank])
			}
		}
	}
	for i := 0; i < rounds; i++ {
		b.eramw(0, 0, i, sub[i])
	}

	var regs []int
	for st := 0; st < hw-1; st++ {
		regs = append(regs, 4*st+3)
	}
	for _, row := range regs {
		// Only l' and newL cross the boundary live; the next round
		// overwrites the scratch lanes without reading them.
		b.regAt(row, 0, true)
		b.regAt(row, 1, true)
	}

	b.iterativeFlow(len(regs)+1, passes, iterHooks{
		LastPass: func(b *builder) {
			b.blowfishLastRoundToggle(4*(hw-1), false)
			b.white(0, isa.WhiteXor, false, wh0)
			b.white(1, isa.WhiteXor, false, wh1)
		},
		EveryPass: func(b *builder, pass int) {
			for st := 0; st < hw; st++ {
				b.er(4*st, 0, 0, pass*hw+st)
			}
		},
		Epilogue: func(b *builder) {
			b.blowfishLastRoundToggle(4*(hw-1), true)
			b.whiteOff(0)
			b.whiteOff(1)
		},
	})
	p.Instrs = b.ins
	return p, nil
}

// BuildBlowfish compiles Blowfish encryption at unroll depth hw (1 or 2 —
// the per-stage LUT copies cap deeper unrolls).
func BuildBlowfish(key []byte, hw int) (*Program, error) {
	return buildBlowfish(key, hw, false)
}

// BuildBlowfishDecrypt compiles Blowfish decryption at unroll depth hw.
func BuildBlowfishDecrypt(key []byte, hw int) (*Program, error) {
	return buildBlowfish(key, hw, true)
}
