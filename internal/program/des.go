package program

import (
	"fmt"

	"cobra/internal/cipher"
	"cobra/internal/isa"
)

// DES on COBRA. The paper's §4 survey rejects bit-level permutation
// networks as a poor fit for a 32-bit coarse-grained array, and the
// mapping honours that verdict: the initial and final permutations stay
// on the host, and the round permutation P is folded into eight 256×32
// SP tables (P applied to each S-box's positioned output), the classic
// software decomposition restated as C-element 8→32 look-ups. With the
// expansion E expressed as byte-aligned rotations of R — group i of the
// 48-bit round key meets bits RotL(R, 4i+5) — a round is:
//
//	s_i = SP_i[(RotL(R, 4i+5) ^ K_i[g_i]) & 0xff]   (junk high index
//	      bits are don't-cares: the tables repeat every 64 entries)
//	L', R' = R, L ^ s_0 ^ ... ^ s_7
//
// Eight look-ups need eight RCEs, so a round is six rows: two look-ups
// per row staggered Blowfish-style down columns 2-3 (R re-fetched from
// the one-row bypass), with column 0 folding the XOR tree and column 1
// carrying L. One block per superblock: words 0,1 = (hi,lo) of IP(pt);
// the host applies IP before packing and the swap-undo plus FP after
// unpacking, and the scratch lanes exit holding round intermediates so
// every output word stays key- and plaintext-tainted. Decryption is the
// identical program walking the subkeys backwards. The eight per-stage
// tables cost 2048 LUTLD words, capping the unroll at one round.

// desRoundRows emits one (swapped) DES round at rows rt..rt+5. Key-chunk
// ER configs are walked per pass by the flow hooks, not set here.
func (b *builder) desRoundRows(rt int) {
	lut := func(row, col int, group int) {
		s := isa.SliceAt(row, col)
		b.cfge(s, isa.ElemE1, eImm(isa.ERotl, uint8((4*group+5)&31)))
		b.cfge(s, isa.ElemA1, aCfg(isa.AXor, isa.SrcINER))
		b.cfge(s, isa.ElemC, isa.CCfg{Mode: isa.CS8to32, ByteSel: 0}.Encode())
	}

	// The bypass bus carries the vector that ENTERED the previous row, so
	// L and R ping-pong between a live lane and a Prev recovery: a value
	// absent from one row's vector is still reachable one row later.

	// Row rt: s0, s1 of R (block 1); columns 2, 3 carry R and L.
	b.insel(rt, 0, 1) // col0's INB = block 1 = R
	lut(rt, 0, 0)
	lut(rt, 1, 1)     // col1's own block is R
	b.insel(rt, 2, 2) // col2's INC = block 1 = R
	b.insel(rt, 3, 1) // col3's INB = block 0 = L

	// Row rt+1: s2 (own R), s3 in columns 2-3; column 0 folds s0^s1; L
	// (block 3) moves to column 1.
	s := isa.SliceAt(rt+1, 0)
	b.cfge(s, isa.ElemA1, aCfg(isa.AXor, isa.SrcINB)) // ^ s1
	b.insel(rt+1, 1, 3)                               // col1's IND = block 3 = L
	lut(rt+1, 2, 2)
	b.insel(rt+1, 3, 3) // col3's IND = block 2 = R
	lut(rt+1, 3, 3)

	// Row rt+2: s4, s5 of R recovered off the bypass (Prev[2], the R lane
	// entering row rt+1); column 1 swaps to carrying R the same way while
	// L rides the bus to the next row.
	s = isa.SliceAt(rt+2, 0)
	b.cfge(s, isa.ElemA1, aCfg(isa.AXor, isa.SrcINC))
	b.cfge(s, isa.ElemA2, aCfg(isa.AXor, isa.SrcIND))
	b.insel(rt+2, 1, 6) // PC = R
	b.insel(rt+2, 2, 6) // PC = R
	lut(rt+2, 2, 4)
	b.insel(rt+2, 3, 6) // PC = R
	lut(rt+2, 3, 5)

	// Row rt+3: s6, s7 of R (now block 1); L comes back off the bypass
	// (Prev[1], the L lane entering row rt+2).
	s = isa.SliceAt(rt+3, 0)
	b.cfge(s, isa.ElemA1, aCfg(isa.AXor, isa.SrcINC))
	b.cfge(s, isa.ElemA2, aCfg(isa.AXor, isa.SrcIND))
	b.insel(rt+3, 1, 5) // PB = L
	b.insel(rt+3, 2, 2) // col2's INC = block 1 = R
	lut(rt+3, 2, 6)
	b.insel(rt+3, 3, 2) // col3's INC = block 1 = R
	lut(rt+3, 3, 7)

	// Row rt+4: y = x ^ s6 ^ s7; newL = R recovered one last time
	// (Prev[1], the R lane entering row rt+3).
	s = isa.SliceAt(rt+4, 0)
	b.cfge(s, isa.ElemA1, aCfg(isa.AXor, isa.SrcINC))
	b.cfge(s, isa.ElemA2, aCfg(isa.AXor, isa.SrcIND))
	b.insel(rt+4, 2, 5) // PB = R

	// Row rt+5: settle (L', R') = (R, y ^ L); scratch lanes carry y and s7.
	b.insel(rt+5, 0, 2) // col0's INC = block 2 = R
	s = isa.SliceAt(rt+5, 1)
	b.cfge(s, isa.ElemA1, aCfg(isa.AXor, isa.SrcINB)) // L ^ y
	b.insel(rt+5, 2, 1)                               // col2's INB = block 0 = y
}

// buildDES compiles the single-round-stage DES program; decryption is the
// same datapath walking the subkeys backwards.
func buildDES(key []byte, decrypt bool) (*Program, error) {
	ck, err := cipher.NewDES(key)
	if err != nil {
		return nil, err
	}
	rk := ck.RoundKeys48()
	const rounds = 16

	geo, passes, err := validateUnroll("des", 1, rounds, 6, 0)
	if err != nil {
		return nil, err
	}

	name := "des-1"
	if decrypt {
		name = "des-dec-1"
	}
	p := &Program{
		Name:        name,
		Cipher:      "des",
		HWRounds:    1,
		TotalRounds: rounds,
		Geometry:    geo,
		Window:      1,
	}
	b := &builder{}
	b.disout()
	b.desRoundRows(0)

	// The eight SP tables live where their look-up fires: groups 0,1 at
	// rows 0; 2,3 at row 1; 4,5 at row 2; 6,7 at row 3 (columns per
	// desRoundRows).
	sp := cipher.DESSPTables()
	at := [8][2]int{{0, 0}, {0, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3}, {3, 2}, {3, 3}}
	for g := range sp {
		banks := blowfishBankTables(&sp[g])
		s := isa.SliceAt(at[g][0], at[g][1])
		for bank := 0; bank < 4; bank++ {
			b.loadS8(s, bank, &banks[bank])
		}
	}

	// Key chunks: group g's 6-bit chunk for round r sits at address r of
	// the consuming column's eRAM, banked by row so columns 2-3 serve
	// three groups each (bank = 0, 1, 2 for rows 1, 2, 3).
	for r := 0; r < rounds; r++ {
		k := rk[r]
		if decrypt {
			k = rk[rounds-1-r]
		}
		for g := 0; g < 8; g++ {
			col := at[g][1]
			bank := 0
			if g >= 4 {
				bank = (g - 2) / 2 // groups 4,5 → bank 1; 6,7 → bank 2
			}
			b.eramw(col, bank, r, cipher.DESKeyChunk(k, g))
		}
	}

	b.iterativeFlow(1, passes, iterHooks{
		EveryPass: func(b *builder, pass int) {
			for g := 0; g < 8; g++ {
				bank := 0
				if g >= 4 {
					bank = (g - 2) / 2
				}
				b.er(at[g][0], at[g][1], bank, pass)
			}
		},
	})
	p.Instrs = b.ins
	return p, nil
}

// BuildDES compiles DES encryption (host-side IP/FP; see the package
// comment above on the superblock convention).
func BuildDES(key []byte) (*Program, error) { return buildDES(key, false) }

// BuildDESDecrypt compiles DES decryption.
func BuildDESDecrypt(key []byte) (*Program, error) { return buildDES(key, true) }

// DESPack packs 8-byte DES blocks for the datapath: IP applied host-side,
// then the (hi,lo) halves as superblock words 0,1 (scratch words zero).
func DESPack(blocks []byte) ([]byte, error) {
	if len(blocks)%8 != 0 {
		return nil, fmt.Errorf("des: %d bytes is not a whole number of blocks", len(blocks))
	}
	out := make([]byte, 2*len(blocks))
	for i := 0; i*8 < len(blocks); i++ {
		v := cipher.DESInitialPermutation(cipher.DESLoad64(blocks[8*i:]))
		cipher.DESStore64(out[16*i:], v)
		SwapWords32(out[16*i : 16*i+8])
	}
	return out, nil
}

// DESUnpack undoes DESPack on the datapath's output: the Feistel
// swap-undo and the final permutation.
func DESUnpack(sbs []byte) ([]byte, error) {
	if len(sbs)%16 != 0 {
		return nil, fmt.Errorf("des: %d bytes is not a whole number of superblocks", len(sbs))
	}
	out := make([]byte, len(sbs)/2)
	buf := make([]byte, 8)
	for i := 0; 16*i < len(sbs); i++ {
		copy(buf, sbs[16*i:16*i+8])
		SwapWords32(buf)
		v := cipher.DESLoad64(buf)
		cipher.DESStore64(out[8*i:], cipher.DESFinalPermutation(v<<32|v>>32))
	}
	return out, nil
}
