package cipher

// IDEA (International Data Encryption Algorithm). The paper singles out
// IDEA's multiplication mod 2^16+1 as the one core operation COBRA does not
// support ("highly specific to IDEA", §4); the reference implementation is
// here for the census, the software baseline, and the tests that document
// that gap.

// IDEA implements IDEA with the standard 8.5-round structure.
type IDEA struct {
	ek [52]uint16
	dk [52]uint16
}

// NewIDEA derives encryption and decryption key schedules from a 16-byte
// key.
func NewIDEA(key []byte) (*IDEA, error) {
	if len(key) != 16 {
		return nil, KeySizeError{"idea", len(key)}
	}
	var c IDEA
	c.buildEncKeys(key)
	c.buildDecKeys()
	return &c, nil
}

// buildEncKeys derives the 52 encryption subkeys: successive 16-bit words
// of the key register, rotating the whole 128-bit register left by 25 bits
// after every 8 words.
func (c *IDEA) buildEncKeys(key []byte) {
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(key[i])
		lo = lo<<8 | uint64(key[8+i])
	}
	word := func(i int) uint16 {
		// Word i (0..7) of the register, most significant first.
		sh := uint(112 - 16*i)
		if sh >= 64 {
			return uint16(hi >> (sh - 64))
		}
		return uint16(lo >> sh)
	}
	for i := 0; i < 52; i++ {
		c.ek[i] = word(i % 8)
		if i%8 == 7 {
			// Rotate (hi,lo) left by 25 bits.
			nhi := hi<<25 | lo>>39
			nlo := lo<<25 | hi>>39
			hi, lo = nhi, nlo
		}
	}
}

// ideaMul multiplies mod 2^16+1 with 0 representing 2^16.
func ideaMul(a, b uint16) uint16 {
	x, y := uint64(a), uint64(b)
	if x == 0 {
		x = 0x10000
	}
	if y == 0 {
		y = 0x10000
	}
	return uint16(x * y % 0x10001)
}

// ideaInv is the multiplicative inverse mod 2^16+1.
func ideaInv(a uint16) uint16 {
	if a <= 1 {
		return a // 0 (= 2^16) and 1 are self-inverse
	}
	// Extended Euclid on (0x10001, a).
	var t0, t1 int64 = 0, 1
	var r0, r1 int64 = 0x10001, int64(a)
	for r1 != 0 {
		q := r0 / r1
		r0, r1 = r1, r0-q*r1
		t0, t1 = t1, t0-q*t1
	}
	if t0 < 0 {
		t0 += 0x10001
	}
	return uint16(t0)
}

// buildDecKeys inverts the encryption schedule.
func (c *IDEA) buildDecKeys() {
	e := &c.ek
	d := &c.dk
	d[48] = ideaInv(e[0])
	d[49] = -e[1]
	d[50] = -e[2]
	d[51] = ideaInv(e[3])
	for r := 0; r < 8; r++ {
		ebase := 6*r + 4
		dbase := 6 * (7 - r)
		d[dbase+4] = e[ebase]
		d[dbase+5] = e[ebase+1]
		d[dbase] = ideaInv(e[ebase+2])
		if r == 7 {
			d[dbase+1] = -e[ebase+3]
			d[dbase+2] = -e[ebase+4]
		} else {
			d[dbase+1] = -e[ebase+4]
			d[dbase+2] = -e[ebase+3]
		}
		d[dbase+3] = ideaInv(e[ebase+5])
	}
}

// rotl128 rotates an 8-word register left by n bits (helper retained for
// the key-schedule tests).
func rotl128(k *[8]uint16, n uint) {
	var hi, lo uint64
	for i := 0; i < 4; i++ {
		hi = hi<<16 | uint64(k[i])
		lo = lo<<16 | uint64(k[4+i])
	}
	n %= 128
	if n >= 64 {
		hi, lo = lo, hi
		n -= 64
	}
	if n > 0 {
		nhi := hi<<n | lo>>(64-n)
		nlo := lo<<n | hi>>(64-n)
		hi, lo = nhi, nlo
	}
	for i := 3; i >= 0; i-- {
		k[i] = uint16(hi)
		hi >>= 16
		k[4+i] = uint16(lo)
		lo >>= 16
	}
}

// BlockSize returns 8.
func (c *IDEA) BlockSize() int { return 8 }

// crypt runs the 8.5-round IDEA structure with the given subkeys.
func ideaCrypt(dst, src []byte, k *[52]uint16) {
	x1 := uint16(src[0])<<8 | uint16(src[1])
	x2 := uint16(src[2])<<8 | uint16(src[3])
	x3 := uint16(src[4])<<8 | uint16(src[5])
	x4 := uint16(src[6])<<8 | uint16(src[7])
	for r := 0; r < 8; r++ {
		b := 6 * r
		x1 = ideaMul(x1, k[b])
		x2 += k[b+1]
		x3 += k[b+2]
		x4 = ideaMul(x4, k[b+3])
		t0 := ideaMul(x1^x3, k[b+4])
		t1 := ideaMul(t0+(x2^x4), k[b+5])
		t2 := t0 + t1
		x1 ^= t1
		x4 ^= t2
		x2, x3 = x3^t1, x2^t2
	}
	y1 := ideaMul(x1, k[48])
	y2 := x3 + k[49]
	y3 := x2 + k[50]
	y4 := ideaMul(x4, k[51])
	dst[0], dst[1] = byte(y1>>8), byte(y1)
	dst[2], dst[3] = byte(y2>>8), byte(y2)
	dst[4], dst[5] = byte(y3>>8), byte(y3)
	dst[6], dst[7] = byte(y4>>8), byte(y4)
}

// Encrypt encrypts one 8-byte block.
func (c *IDEA) Encrypt(dst, src []byte) { ideaCrypt(dst, src, &c.ek) }

// Decrypt decrypts one 8-byte block.
func (c *IDEA) Decrypt(dst, src []byte) { ideaCrypt(dst, src, &c.dk) }
