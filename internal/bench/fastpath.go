package bench

import (
	"bytes"
	"fmt"
	"text/tabwriter"
	"time"

	"cobra/internal/bits"
	"cobra/internal/program"
)

// FastpathMeasurement compares the two execution engines on one
// configuration: wall-clock time per block for the cycle-accurate
// interpreter and for the trace-compiled executor, over the same workload.
// Verified asserts the executors agreed — identical ciphertext and
// identical simulated counters — so a reported speedup can never come
// from a divergent (wrong) fast engine.
type FastpathMeasurement struct {
	Config
	Blocks         int     `json:"blocks"`
	InterpNsPerBlk float64 `json:"interp_ns_per_block"`
	FastNsPerBlk   float64 `json:"fastpath_ns_per_block"`
	Speedup        float64 `json:"speedup"`
	Verified       bool    `json:"verified"`
}

// MeasureFastpath times one configuration's bulk ECB encryption on both
// engines. Each engine gets its own machine/executor so neither run
// perturbs the other's pipeline state, and both consume the identical
// deterministic batch.
func MeasureFastpath(c Config, key []byte, blocks int) (FastpathMeasurement, error) {
	p, err := Build(c, key)
	if err != nil {
		return FastpathMeasurement{}, err
	}
	m, err := program.NewMachine(p)
	if err != nil {
		return FastpathMeasurement{}, err
	}
	observe(m)
	if err := program.Load(m, p); err != nil {
		return FastpathMeasurement{}, err
	}
	ex, err := p.Compile()
	if err != nil {
		return FastpathMeasurement{}, fmt.Errorf("%s-%d: trace compilation: %w", c.Alg, c.Rounds, err)
	}

	in := testBatch(blocks)
	want := make([]bits.Block128, blocks)
	got := make([]bits.Block128, blocks)

	t0 := time.Now()
	wantStats, err := program.Run(m, p, want, in, program.Opts{})
	interpNs := float64(time.Since(t0).Nanoseconds())
	if err != nil {
		return FastpathMeasurement{}, err
	}
	t0 = time.Now()
	gotStats, err := ex.EncryptInto(got, in)
	fastNs := float64(time.Since(t0).Nanoseconds())
	if err != nil {
		return FastpathMeasurement{}, err
	}

	verified := gotStats == wantStats
	for i := range want {
		if got[i] != want[i] {
			verified = false
			break
		}
	}
	fm := FastpathMeasurement{
		Config:         c,
		Blocks:         blocks,
		InterpNsPerBlk: interpNs / float64(blocks),
		FastNsPerBlk:   fastNs / float64(blocks),
		Verified:       verified,
	}
	if fastNs > 0 {
		fm.Speedup = interpNs / fastNs
	}
	return fm, nil
}

// MeasureFastpathAll sweeps the Table 3 configurations through both
// engines.
func MeasureFastpathAll(key []byte, blocks int) ([]FastpathMeasurement, error) {
	var out []FastpathMeasurement
	for _, c := range Configurations() {
		fm, err := MeasureFastpath(c, key, blocks)
		if err != nil {
			return nil, fmt.Errorf("%s-%d: %w", c.Alg, c.Rounds, err)
		}
		out = append(out, fm)
	}
	return out, nil
}

// FastpathTableText renders the interpreter-vs-fastpath comparison.
func FastpathTableText(fms []FastpathMeasurement) string {
	var b bytes.Buffer
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Fastpath: trace-compiled executor vs cycle-accurate interpreter (wall clock)")
	fmt.Fprintln(w, "Alg\tRnds\tBlocks\tInterp ns/blk\tFastpath ns/blk\tSpeedup\tVerified")
	for _, m := range fms {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.0f\t%.1fx\t%v\n",
			m.Alg, m.Rounds, m.Blocks, m.InterpNsPerBlk, m.FastNsPerBlk, m.Speedup, m.Verified)
	}
	w.Flush()
	return b.String()
}
