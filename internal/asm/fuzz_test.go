package asm

import (
	"testing"

	"cobra/internal/isa"
)

// FuzzDisassembleAssemble checks totality and convergence of the surface
// syntax over the whole packed instruction space: every decodable word
// disassembles to a line the assembler accepts, and assemble∘disassemble
// is a normalization — one pass may canonicalize don't-care bits (a JMP's
// high data bits, a bypassed element's stale operand field), but a second
// pass is the identity on the normalized program.
//
// The one excluded region is a 4→4 LUT load addressing a nibble group
// beyond 15: the hardware has 16 groups per bank, the assembler rejects the
// address, and cobra-vet reports it as "lut-range".
func FuzzDisassembleAssemble(f *testing.F) {
	seed := []isa.Instr{
		{Op: isa.OpNop},
		{Op: isa.OpJmp, Data: 7},
		{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: isa.FlagReady, Clear: isa.FlagBusy}.Encode()},
		{Op: isa.OpCfgElem, Slice: isa.Slice{Scope: isa.ScopeAll}, Elem: isa.ElemC,
			Data: isa.CCfg{Mode: isa.CS8x8}.Encode()},
		{Op: isa.OpLoadLUT, Slice: isa.Slice{Scope: isa.ScopeCol, Col: 1},
			LUT: isa.LUTAddr(true, 2, 15), Data: 0x89abcdef},
	}
	for _, in := range seed {
		w := in.Pack()
		f.Add(w.Hi, w.Lo)
	}
	f.Fuzz(func(t *testing.T, hi uint16, lo uint64) {
		w := isa.Word{Hi: hi, Lo: lo}
		in, err := isa.Unpack(w)
		if err != nil {
			return
		}
		if in.Op == isa.OpLoadLUT {
			if space4, _, group := isa.SplitLUTAddr(in.LUT); space4 && group > 15 {
				return
			}
		}
		text, err := Disassemble([]isa.Word{w})
		if err != nil {
			t.Fatalf("Disassemble(%v): %v", in, err)
		}
		norm, err := Assemble(text)
		if err != nil {
			t.Fatalf("Assemble(Disassemble(%v)) rejected %q: %v", in, text, err)
		}
		if len(norm) != 1 {
			t.Fatalf("one instruction became %d", len(norm))
		}
		text2, err := Disassemble(norm)
		if err != nil {
			t.Fatalf("Disassemble of normalized %v: %v", norm[0], err)
		}
		again, err := Assemble(text2)
		if err != nil {
			t.Fatalf("second Assemble rejected %q: %v", text2, err)
		}
		if again[0] != norm[0] {
			t.Fatalf("not a fixed point: %v -> %v -> %v", w, norm[0], again[0])
		}
	})
}
