package vet_test

import (
	"strings"
	"testing"

	"cobra/internal/isa"
	"cobra/internal/vet"
)

// Instruction construction helpers for seeded-defect programs.

func nop() isa.Instr  { return isa.Instr{Op: isa.OpNop} }
func halt() isa.Instr { return isa.Instr{Op: isa.OpHalt} }

func jmp(target int) isa.Instr {
	return isa.Instr{Op: isa.OpJmp, Data: uint64(target)}
}

func flag(set, clear uint16) isa.Instr {
	return isa.Instr{Op: isa.OpCtlFlag, Data: isa.FlagCfg{Set: set, Clear: clear}.Encode()}
}

func enoutAll() isa.Instr {
	return isa.Instr{Op: isa.OpEnOut, Slice: isa.Slice{Scope: isa.ScopeAll}}
}

func disoutAll() isa.Instr {
	return isa.Instr{Op: isa.OpDisOut, Slice: isa.Slice{Scope: isa.ScopeAll}}
}

// cfgeCAll configures every C element for 8→8 substitution — a structural
// word with no operand reads.
func cfgeCAll() isa.Instr {
	return isa.Instr{Op: isa.OpCfgElem, Slice: isa.Slice{Scope: isa.ScopeAll},
		Elem: isa.ElemC, Data: isa.CCfg{Mode: isa.CS8x8}.Encode()}
}

// cfgeCAllS4 is a conflicting C configuration (different data, same element).
func cfgeCAllS4() isa.Instr {
	return isa.Instr{Op: isa.OpCfgElem, Slice: isa.Slice{Scope: isa.ScopeAll},
		Elem: isa.ElemC, Data: isa.CCfg{Mode: isa.CS4x4}.Encode()}
}

// findingAt reports whether fs contains a finding with the code at the addr.
func findingAt(fs []vet.Finding, code string, addr int) bool {
	for _, f := range fs {
		if f.Code == code && f.Addr == addr {
			return true
		}
	}
	return false
}

// requireOnly asserts fs consists exactly of the expected (code, addr) pairs.
func requireOnly(t *testing.T, fs []vet.Finding, want map[string]int) {
	t.Helper()
	for code, addr := range want {
		if !findingAt(fs, code, addr) {
			t.Errorf("missing finding %s at %04x; got %v", code, addr, fs)
		}
	}
	for _, f := range fs {
		if addr, ok := want[f.Code]; !ok || addr != f.Addr {
			t.Errorf("unexpected finding %v", f)
		}
	}
}

func TestCleanProgramNoFindings(t *testing.T) {
	prog := []isa.Instr{
		disoutAll(),                       // 0
		cfgeCAll(),                        // 1: structural while disabled
		enoutAll(),                        // 2
		flag(isa.FlagReady, isa.FlagBusy), // 3: idle point
		flag(isa.FlagBusy, isa.FlagReady), // 4: accept work
		nop(),                             // 5
		flag(isa.FlagDValid, 0),           // 6: announce output
		nop(),                             // 7: enabled cycle presents it
		flag(0, isa.FlagDValid),           // 8
		jmp(3),                            // 9: back to the idle point
	}
	fs := vet.Check(prog, vet.Config{})
	if len(fs) != 0 {
		t.Fatalf("clean program produced findings: %v", fs)
	}
}

func TestUnbracketedReconfigW1(t *testing.T) {
	prog := []isa.Instr{
		disoutAll(), // 0
		enoutAll(),  // 1
		cfgeCAll(),  // 2: first structural word; the w=1 cycle after it...
		isa.Instr{Op: isa.OpLoadLUT, Slice: isa.Slice{Scope: isa.ScopeAll},
			LUT: isa.LUTAddr(false, 0, 0)}, // 3: ...splits the run while enabled
		halt(), // 4
	}
	fs := vet.Check(prog, vet.Config{})
	requireOnly(t, fs, map[string]int{"unbracketed-reconfig": 3})
}

func TestUnbracketedReconfigW2(t *testing.T) {
	prog := []isa.Instr{
		disoutAll(), // 0
		enoutAll(),  // 1: window boundary after this slot
		cfgeCAll(),  // 2: slot 0
		cfgeCAll(),  // 3: slot 1 — window boundary fires mid-run
		cfgeCAll(),  // 4: continues the split run
		halt(),      // 5
	}
	fs := vet.Check(prog, vet.Config{Window: 2})
	if !findingAt(fs, "unbracketed-reconfig", 4) {
		t.Fatalf("want unbracketed-reconfig at 0004, got %v", fs)
	}
}

func TestBracketedReconfigClean(t *testing.T) {
	// The same overfull reconfiguration run inside a DISOUT/ENOUT bracket
	// is the §3.4 idiom and must not fire.
	prog := []isa.Instr{
		disoutAll(), // 0
		cfgeCAll(),  // 1
		isa.Instr{Op: isa.OpLoadLUT, Slice: isa.Slice{Scope: isa.ScopeAll},
			LUT: isa.LUTAddr(false, 0, 0)}, // 2
		enoutAll(), // 3
		halt(),     // 4
	}
	fs := vet.Check(prog, vet.Config{})
	if len(fs) != 0 {
		t.Fatalf("bracketed reconfiguration flagged: %v", fs)
	}
}

func TestDValidLostCleared(t *testing.T) {
	prog := []isa.Instr{
		disoutAll(),             // 0: outputs disabled — cycles serve nothing
		flag(isa.FlagDValid, 0), // 1: raise data-valid
		flag(0, isa.FlagDValid), // 2: ...and drop it before any enabled cycle
		halt(),                  // 3
	}
	fs := vet.Check(prog, vet.Config{})
	requireOnly(t, fs, map[string]int{"dvalid-lost": 1})
}

func TestDValidLostAtIdle(t *testing.T) {
	prog := []isa.Instr{
		disoutAll(),             // 0
		flag(isa.FlagDValid, 0), // 1: raise data-valid while disabled
		flag(isa.FlagReady, 0),  // 2: idle without ever presenting it
		halt(),                  // 3
	}
	fs := vet.Check(prog, vet.Config{})
	if !findingAt(fs, "dvalid-lost", 1) {
		t.Errorf("want dvalid-lost at 0001, got %v", fs)
	}
	if !findingAt(fs, "dvalid-at-idle", 2) {
		t.Errorf("want dvalid-at-idle at 0002, got %v", fs)
	}
}

func TestWindowMisalign(t *testing.T) {
	// A 3-instruction loop at w=2 drifts the slot phase on every lap.
	prog := []isa.Instr{
		nop(),  // 0: slot 0
		nop(),  // 1: slot 1 — boundary
		nop(),  // 2: slot 0
		jmp(1), // 3: slot 1 — boundary; 1 re-executes at slot 0
	}
	fs := vet.Check(prog, vet.Config{Window: 2})
	if !findingAt(fs, "window-misalign", 1) {
		t.Fatalf("want window-misalign at 0001, got %v", fs)
	}
}

func TestReadyResyncExemptFromMisalign(t *testing.T) {
	// The idle point is re-entered from the setup path at one phase and
	// from the steady loop at another; the ready resync makes that legal.
	prog := []isa.Instr{
		nop(),                  // 0: phase 0
		flag(isa.FlagReady, 0), // 1: phase 1 on entry, resyncs to 0
		flag(0, isa.FlagReady), // 2: phase 0
		nop(),                  // 3
		nop(),                  // 4
		jmp(1),                 // 5: re-enters 1 at a different phase
	}
	fs := vet.Check(prog, vet.Config{Window: 2})
	if findingAt(fs, "window-misalign", 1) {
		t.Fatalf("ready resync point flagged as misaligned: %v", fs)
	}
}

func TestNoProgressLoop(t *testing.T) {
	prog := []isa.Instr{
		flag(isa.FlagReady, 0), // 0: resync — no cycle
		jmp(0),                 // 1: one slot of a w=2 window — no cycle
	}
	fs := vet.Check(prog, vet.Config{Window: 2})
	// The walk reports the state-repeat point, which lands on the loop's
	// jump back to the idle point.
	if !findingAt(fs, "no-progress-loop", 1) {
		t.Fatalf("want no-progress-loop at 0001, got %v", fs)
	}
}

func TestReadyTick(t *testing.T) {
	prog := []isa.Instr{
		flag(isa.FlagReady, 0), // 0: raise ready...
		nop(),                  // 1: ...and complete a window with it set
		jmp(0),                 // 2
	}
	fs := vet.Check(prog, vet.Config{})
	if !findingAt(fs, "ready-tick", 1) {
		t.Fatalf("want ready-tick at 0001, got %v", fs)
	}
}

func TestJmpRange(t *testing.T) {
	prog := []isa.Instr{nop(), jmp(5)}
	fs := vet.Check(prog, vet.Config{})
	requireOnly(t, fs, map[string]int{"jmp-range": 1})
}

func TestFallOffEnd(t *testing.T) {
	prog := []isa.Instr{nop(), nop()}
	fs := vet.Check(prog, vet.Config{})
	requireOnly(t, fs, map[string]int{"fall-off-end": 1})
}

func TestDeadCode(t *testing.T) {
	prog := []isa.Instr{jmp(3), nop(), nop(), halt()}
	fs := vet.Check(prog, vet.Config{})
	requireOnly(t, fs, map[string]int{"dead-code": 1})
	for _, f := range fs {
		if f.Code == "dead-code" && !strings.Contains(f.Msg, "0001..0002") {
			t.Errorf("dead-code message should name the range 0001..0002: %q", f.Msg)
		}
	}
}

func TestSliceRange(t *testing.T) {
	prog := []isa.Instr{
		isa.Instr{Op: isa.OpCfgElem, Slice: isa.Slice{Scope: isa.ScopeOne, Row: 7},
			Elem: isa.ElemER},
		halt(),
	}
	fs := vet.Check(prog, vet.Config{Rows: 4})
	requireOnly(t, fs, map[string]int{"slice-range": 0})
}

func TestLUTRange(t *testing.T) {
	prog := []isa.Instr{
		isa.Instr{Op: isa.OpLoadLUT, Slice: isa.Slice{Scope: isa.ScopeAll},
			LUT: isa.LUTAddr(true, 0, 16)},
		halt(),
	}
	fs := vet.Check(prog, vet.Config{})
	requireOnly(t, fs, map[string]int{"lut-range": 0})
}

func TestMulColumn(t *testing.T) {
	prog := []isa.Instr{
		isa.Instr{Op: isa.OpCfgElem, Slice: isa.Slice{Scope: isa.ScopeOne, Row: 0, Col: 0},
			Elem: isa.ElemD, Data: isa.DCfg{Mode: isa.DMul16, Operand: isa.SrcImm}.Encode()},
		halt(),
	}
	fs := vet.Check(prog, vet.Config{})
	requireOnly(t, fs, map[string]int{"mul-column": 0})
}

func TestINERUnconfigured(t *testing.T) {
	prog := []isa.Instr{
		isa.Instr{Op: isa.OpCfgElem, Slice: isa.Slice{Scope: isa.ScopeOne, Row: 0, Col: 0},
			Elem: isa.ElemA1, Data: isa.ACfg{Op: isa.AXor, Operand: isa.SrcINER}.Encode()},
		halt(),
	}
	fs := vet.Check(prog, vet.Config{})
	requireOnly(t, fs, map[string]int{"iner-unconfigured": 0})

	// Adding a CFGE ER covering the cell silences the warning.
	withER := append([]isa.Instr{
		isa.Instr{Op: isa.OpCfgElem, Slice: isa.Slice{Scope: isa.ScopeRow, Row: 0},
			Elem: isa.ElemER, Data: isa.ERCfg{Bank: 0, Addr: 0}.Encode()},
	}, prog...)
	if fs := vet.Check(withER, vet.Config{}); len(fs) != 0 {
		t.Fatalf("covered INER read still flagged: %v", fs)
	}
}

func TestConflictWrite(t *testing.T) {
	prog := []isa.Instr{
		cfgeCAll(),   // 0: slot 0
		cfgeCAllS4(), // 1: slot 1, same window, same element, different data
		halt(),       // 2
	}
	fs := vet.Check(prog, vet.Config{Window: 2})
	requireOnly(t, fs, map[string]int{"conflict-write": 1})
}

func TestConflictWriteAcrossWindowsClean(t *testing.T) {
	prog := []isa.Instr{
		cfgeCAll(),   // 0: window 1
		nop(),        // 1
		cfgeCAllS4(), // 2: window 2 — a legal reconfiguration
		nop(),        // 3
		halt(),       // 4
	}
	fs := vet.Check(prog, vet.Config{Window: 2})
	if findingAt(fs, "conflict-write", 2) {
		t.Fatalf("cross-window rewrite flagged as conflict: %v", fs)
	}
}

func TestEmptyProgram(t *testing.T) {
	fs := vet.Check(nil, vet.Config{})
	requireOnly(t, fs, map[string]int{"empty": 0})
}

func TestCheckWordsDecode(t *testing.T) {
	bad := isa.Word{Hi: 0xffff} // opcode 31: invalid
	fs := vet.CheckWords([]isa.Word{nop().Pack(), bad}, vet.Config{})
	requireOnly(t, fs, map[string]int{"decode": 1})
}

func TestJmpWideWarn(t *testing.T) {
	prog := []isa.Instr{
		isa.Instr{Op: isa.OpJmp, Data: 0x1000}, // 12-bit field truncates to 0
		halt(),
	}
	fs := vet.Check(prog, vet.Config{})
	if !findingAt(fs, "jmp-wide", 0) {
		t.Fatalf("want jmp-wide at 0000, got %v", fs)
	}
}

func TestFindingString(t *testing.T) {
	fs := vet.Check([]isa.Instr{nop(), jmp(9)}, vet.Config{})
	if len(fs) != 1 {
		t.Fatalf("got %v", fs)
	}
	s := fs[0].String()
	for _, want := range []string{"0001:", "error", "jmp-range", "[JMP 9]"} {
		if !strings.Contains(s, want) {
			t.Errorf("finding %q missing %q", s, want)
		}
	}
}

func TestWalkToIdle(t *testing.T) {
	prog := []isa.Instr{
		disoutAll(),            // 0
		cfgeCAll(),             // 1
		nop(),                  // 2
		enoutAll(),             // 3
		flag(isa.FlagReady, 0), // 4: idle point
	}
	ps, err := vet.WalkToIdle(prog, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := vet.PathStats{Instructions: 5, Ticks: 2, Nops: 1, StopAddr: 4, Stop: vet.StopIdle}
	if ps != want {
		t.Fatalf("WalkToIdle = %+v, want %+v", ps, want)
	}

	ps, err = vet.WalkToIdle([]isa.Instr{nop(), halt()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Stop != vet.StopHalt || ps.StopAddr != 1 || ps.Instructions != 2 {
		t.Fatalf("halt trace = %+v", ps)
	}

	if _, err := vet.WalkToIdle([]isa.Instr{nop()}, 1); err == nil {
		t.Fatal("trace leaving the program should error")
	}
}
