package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// demoRegistry builds a small tree exercising every metric kind.
func demoRegistry() *Registry {
	root := NewRegistry()
	root.Counter("cobra_requests_total", "requests served", L("mode", "ctr")).Add(7)
	root.Gauge("cobra_workers", "pool size").Set(4)
	root.Histogram("cobra_shard_blocks", "blocks per shard", []int64{16, 256}).Observe(64)
	dev := NewRegistry(L("alg", "rc6"))
	dev.Counter("cobra_cycles_total", "datapath cycles").Add(1234)
	root.Attach(dev, L("worker", "0"))
	return root
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := demoRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# TYPE cobra_requests_total counter",
		`cobra_requests_total{mode="ctr"} 7`,
		"# TYPE cobra_workers gauge",
		"cobra_workers 4",
		"# TYPE cobra_shard_blocks histogram",
		`cobra_shard_blocks_bucket{le="16"} 0`,
		`cobra_shard_blocks_bucket{le="256"} 1`,
		`cobra_shard_blocks_bucket{le="+Inf"} 1`,
		"cobra_shard_blocks_sum 64",
		"cobra_shard_blocks_count 1",
		`cobra_cycles_total{worker="0",alg="rc6"} 1234`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, got)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", L("path", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `x_total{path="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("escaped output = %q, want to contain %q", b.String(), want)
	}
}

func TestExpvarMap(t *testing.T) {
	m := demoRegistry().ExpvarMap()
	if m[`cobra_requests_total{mode="ctr"}`] != int64(7) {
		t.Fatalf("expvar map = %v", m)
	}
	if _, ok := m["cobra_shard_blocks"].(HistogramSnapshot); !ok {
		t.Fatalf("histogram not snapshotted: %T", m["cobra_shard_blocks"])
	}
	if _, err := json.Marshal(m); err != nil {
		t.Fatalf("expvar map not JSON-marshalable: %v", err)
	}
}

// TestServeScrape is the package-level scrape test: a live listener on a
// random port must serve the Prometheus text, the expvar JSON and the
// span trace of an attached registry tree.
func TestServeScrape(t *testing.T) {
	r := demoRegistry()
	r.EnableTrace(4)
	r.Timer("cobra_call_ns", "per-call latency").Start().End()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`cobra_requests_total{mode="ctr"} 7`,
		`cobra_cycles_total{worker="0",alg="rc6"} 1234`,
		"cobra_call_ns_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	vars := get("/debug/vars")
	var payload map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &payload); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := payload["cobra_metrics"]; !ok {
		t.Fatalf("/debug/vars missing cobra_metrics: %s", vars)
	}

	var spans []SpanRecord
	if err := json.Unmarshal([]byte(get("/debug/trace")), &spans); err != nil {
		t.Fatalf("/debug/trace is not JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "cobra_call_ns" {
		t.Fatalf("/debug/trace spans = %v", spans)
	}
}

// TestServeGracefulShutdown pins the drain contract: a scrape in flight
// when Shutdown is called receives its complete response, the serving
// goroutine exits, and new connections are refused.
func TestServeGracefulShutdown(t *testing.T) {
	reg := NewRegistry()
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	reg.GaugeFunc("cobra_slow_gauge", "Stalls the scrape until released.", func() int64 {
		once.Do(func() { close(entered) })
		<-release
		return 42
	})
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	scraped := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			scraped <- err
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil && !strings.Contains(string(body), "cobra_slow_gauge 42") {
			err = fmt.Errorf("incomplete scrape: %q", body)
		}
		scraped <- err
	}()
	<-entered // the scrape is now in flight inside the handler
	shut := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shut <- srv.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight scrape, not kill it.
	select {
	case err := <-shut:
		t.Fatalf("Shutdown returned (%v) while a scrape was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-scraped; err != nil {
		t.Fatalf("in-flight scrape dropped during graceful shutdown: %v", err)
	}
	if err := <-shut; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case <-srv.Done():
	default:
		t.Fatal("Done() not closed after Shutdown returned")
	}
	if _, err := http.Get(srv.URL + "/metrics"); err == nil {
		t.Fatal("scrape succeeded after shutdown")
	}
}
